"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.multigrid.reference import MultigridOptions

# the CI chaos job replays the fault/resilience suites across a seed
# matrix by varying this (default keeps local runs deterministic)
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "12345"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(CHAOS_SEED)


def make_rhs(rng: np.random.Generator, ndim: int, n: int) -> np.ndarray:
    """Full-size rhs grid with random interior and zero boundary."""
    f = np.zeros((n + 2,) * ndim)
    f[(slice(1, -1),) * ndim] = rng.standard_normal((n,) * ndim)
    return f


def small_opts(cycle: str = "V", smoothing=(2, 2, 2), levels: int = 3):
    n1, n2, n3 = smoothing
    return MultigridOptions(
        cycle=cycle, n1=n1, n2=n2, n3=n3, levels=levels
    )
