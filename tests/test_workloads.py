"""Tests for the benchmark workload definitions (paper Table 2)."""

import pytest

from repro.bench.workloads import (
    NAS_WORKLOADS,
    POISSON_WORKLOADS,
    VARIANT_ORDER,
    geomean,
    workload,
)


class TestTable2:
    def test_eight_poisson_benchmarks(self):
        assert len(POISSON_WORKLOADS) == 8
        names = {w.name for w in POISSON_WORKLOADS}
        assert names == {
            "V-2D-4-4-4",
            "V-2D-10-0-0",
            "W-2D-4-4-4",
            "W-2D-10-0-0",
            "V-3D-4-4-4",
            "V-3D-10-0-0",
            "W-3D-4-4-4",
            "W-3D-10-0-0",
        }

    def test_paper_sizes_and_iterations(self):
        for w in POISSON_WORKLOADS:
            if w.ndim == 2:
                assert w.size["B"] == 8192 and w.size["C"] == 16384
                assert w.iters["B"] == 10 and w.iters["C"] == 10
            else:
                assert w.size["B"] == 256 and w.size["C"] == 512
                assert w.iters["B"] == 25 and w.iters["C"] == 10

    def test_nas_sizes(self):
        assert NAS_WORKLOADS["B"][:2] == (256, 20)
        assert NAS_WORKLOADS["C"][:2] == (512, 20)

    def test_levels_match_table3_stage_counts(self):
        for w in POISSON_WORKLOADS:
            assert w.levels == 4

    def test_workload_lookup(self):
        w = workload("V-2D-4-4-4")
        assert w.cycle == "V" and w.ndim == 2
        with pytest.raises(KeyError):
            workload("Z-9D")

    def test_options_roundtrip(self):
        w = workload("W-3D-10-0-0")
        opts = w.options()
        assert (opts.n1, opts.n2, opts.n3) == (10, 0, 0)
        assert opts.cycle == "W"

    def test_pipeline_builds(self):
        pipe = workload("V-2D-4-4-4").pipeline("laptop")
        assert pipe.stage_count_ == 40

    def test_variant_order_complete(self):
        assert "polymg-opt+" in VARIANT_ORDER
        assert "handopt+pluto" in VARIANT_ORDER

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([3.0]) == pytest.approx(3.0)
