"""Cross-process mutual exclusion on the native artifact store.

`NativeArtifactStore.put` renames two files into place (`.so`, then its
`.json` sidecar).  Each rename is atomic but the *pair* is not: without
the inter-process flock, a `get` in another process can land between
them, hash the new shared object against the old sidecar, conclude the
artifact is corrupt, and delete it.  These tests hammer one store root
from two real processes and assert the flock keeps the store coherent:
no corrupt rejections, no lost artifacts.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cache import NativeArtifactStore, fcntl

pytestmark = pytest.mark.skipif(
    fcntl is None, reason="flock requires a POSIX platform"
)

# Worker executed in a separate interpreter.  Each process alternates
# `put` (fresh payload each round, so renames happen every time) and
# `get` on the same small key set, then reports its stats on stdout.
_WORKER = """
import json, sys
from pathlib import Path
from repro.cache import NativeArtifactStore

root, seed, rounds = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = NativeArtifactStore(root, max_bytes=1 << 20)
stage = Path(root).parent / f"stage-{seed}"
stage.mkdir(exist_ok=True)
keys = ["k0", "k1", "k2"]
served = 0
for i in range(rounds):
    key = keys[(i + seed) % len(keys)]
    built = stage / f"{key}.{i}.built"
    built.write_bytes(bytes([seed]) * 256 + i.to_bytes(4, "little"))
    store.put(key, built)
    if store.get(keys[(i + seed + 1) % len(keys)]) is not None:
        served += 1
print(json.dumps({
    "corrupt": store.stats.corrupt_rejections,
    "stores": store.stats.stores,
    "served": served,
}))
"""


def _run_worker(root: Path, seed: int, rounds: int) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER, str(root), str(seed), str(rounds)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    import json

    return json.loads(proc.stdout)


def test_two_processes_hammer_without_corruption(tmp_path):
    root = tmp_path / "store"
    rounds = 150
    procs = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                _WORKER,
                str(root),
                str(seed),
                str(rounds),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for seed in (1, 2)
    ]
    results = []
    for proc in procs:
        out, err = proc.communicate(timeout=300)
        assert proc.returncode == 0, err
        import json

        results.append(json.loads(out))

    # the flock closes the rename/hash window: nothing was ever seen
    # half-renamed, so no good artifact was "corrupt"-rejected
    assert [r["corrupt"] for r in results] == [0, 0]
    assert all(r["stores"] == rounds for r in results)
    # and the store still serves every key coherently afterwards
    survivor = NativeArtifactStore(root, max_bytes=1 << 20)
    for key in ("k0", "k1", "k2"):
        assert survivor.get(key) is not None
    assert survivor.stats.corrupt_rejections == 0


def test_lock_file_is_not_evictable(tmp_path):
    # the advisory lock file must never be treated as an artifact by
    # eviction or clear()
    store = NativeArtifactStore(tmp_path / "store", max_bytes=64)
    built = tmp_path / "a.built"
    built.write_bytes(b"x" * 128)
    store.put("k", built)  # over budget: eviction machinery runs
    store.clear()
    assert (store.root / ".store.lock").exists()


def test_single_process_semantics_unchanged(tmp_path):
    # the flock composes with the thread lock without deadlocking a
    # plain sequential caller
    store = NativeArtifactStore(tmp_path / "store", max_bytes=1 << 20)
    built = tmp_path / "a.built"
    built.write_bytes(b"payload")
    store.put("k1", built)
    assert store.get("k1") is not None
    assert store.get("k1").read_bytes() == b"payload"
    store.clear()
    assert store.get("k1") is None
