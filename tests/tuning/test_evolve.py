"""The evolutionary cycle-structure search (PR 10 tentpole).

Pins the contracts the CI smoke job and the bench harness rely on:
seeded reproducibility (same seed -> same winner, twice), quarantine
(pathological cycles become recorded failures, never crashes), memo
dedup (revisited genomes are never re-evaluated), Pareto-front
construction, and the ladder-wrapped measured re-rank.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import TrialFailure
from repro.resilience.incidents import IncidentLog
from repro.resilience.ladder import DegradationLadder
from repro.tuning import (
    OMEGA_GRID,
    ConvergenceEvaluator,
    CycleSearch,
    EvolveSettings,
    Genome,
    baseline_options,
    pareto_front,
)
from repro.tuning.evolve import Evaluation, _max_feasible_levels
from repro.multigrid import CycleSpec, LevelSpec

SMALL = EvolveSettings(
    population=6, generations=2, seed=11, pareto_finalists=2
)


def _search(ndim=2, n=32, settings=SMALL, **kw) -> CycleSearch:
    return CycleSearch(
        ndim,
        n,
        settings=settings,
        evaluator=ConvergenceEvaluator(ndim, probe_cycles=5),
        **kw,
    )


def _no_smoothing_genome(search: CycleSearch) -> Genome:
    spec = CycleSpec(
        (
            LevelSpec(pre=0, post=0, omega=0.8),
            LevelSpec(pre=0, post=0, omega=0.8),
            LevelSpec(pre=0, post=0, omega=0.8),
        )
    )
    g = search.baseline_genome()
    return Genome(
        spec=spec,
        tile_shape=g.tile_shape,
        group_limit=g.group_limit,
    )


class TestConvergenceEvaluator:
    def test_baseline_estimate_is_sane(self):
        ev = ConvergenceEvaluator(2, probe_cycles=6)
        est = ev.evaluate(baseline_options(levels=4))
        assert not est.diverged
        assert 0.0 < est.rho < 1.0
        assert est.cycles_to_tol >= 1.0
        assert est.predicted_cycles() >= 1

    def test_no_smoothing_is_flagged_not_ranked(self):
        ev = ConvergenceEvaluator(2, probe_cycles=5)
        spec = CycleSpec(
            (LevelSpec(0, 0, 0.8), LevelSpec(0, 0, 0.8))
        )
        est = ev.evaluate(spec)
        assert est.diverged
        assert not math.isfinite(est.cycles_to_tol)
        with pytest.raises(ValueError):
            est.predicted_cycles()

    def test_memoized_by_fingerprint(self):
        ev = ConvergenceEvaluator(2, probe_cycles=5)
        opts = baseline_options(levels=3)
        a = ev.evaluate(opts)
        b = ev.evaluate(CycleSpec.from_options(opts))
        assert a is b  # flat and per-level forms share one probe
        assert ev.probes == 1 and ev.memo_hits == 1

    def test_deterministic_across_instances(self):
        a = ConvergenceEvaluator(2, probe_cycles=5)
        b = ConvergenceEvaluator(2, probe_cycles=5)
        opts = baseline_options(levels=3)
        assert a.evaluate(opts) == b.evaluate(opts)

    def test_deep_hierarchy_grows_the_proxy(self):
        ev = ConvergenceEvaluator(2)
        assert ev.proxy_n(4) == 32
        assert ev.proxy_n(6) == 64  # coarsest interior stays >= 2


class TestSeededReproducibility:
    def test_same_seed_same_winner_twice(self):
        first = _search().run()
        second = _search().run()
        assert (
            first.best.genome.fingerprint()
            == second.best.genome.fingerprint()
        )
        assert (
            first.winning_genome().short_hash()
            == second.winning_genome().short_hash()
        )
        assert first.history == second.history
        assert first.best.predicted_time == second.best.predicted_time

    def test_different_seed_perturbs_the_search(self):
        a = _search().run()
        b = _search(
            settings=EvolveSettings(
                population=6, generations=2, seed=12, pareto_finalists=2
            )
        ).run()
        # histories diverge (same gen-0 incumbents, different offspring)
        assert a.history != b.history

    def test_result_serializes_for_replay(self):
        res = _search().run()
        d = res.to_dict()
        assert d["seed"] == SMALL.seed
        replayed = Genome.from_dict(d["winner"])
        assert replayed.fingerprint() == res.winning_genome().fingerprint()


class TestQuarantine:
    def test_pathological_genome_is_a_recorded_failure(self):
        log = IncidentLog()
        search = _search(log=log)
        bad = _no_smoothing_genome(search)
        assert search._evaluate_quarantined(bad) is None
        assert len(search.failed) == 1
        assert isinstance(search.failed[0], TrialFailure)
        assert log.count("evolve-quarantine") == 1

    def test_failure_is_latched_breaker_style(self):
        search = _search()
        bad = _no_smoothing_genome(search)
        search._evaluate_quarantined(bad)
        probes_after_first = search.evaluations
        # revisiting the same genome: memo hit, no re-evaluation, no
        # duplicate failure record
        assert search._evaluate_quarantined(bad) is None
        assert search.evaluations == probes_after_first
        assert search.memo_hits == 1
        assert len(search.failed) == 1

    def test_search_survives_pathological_population(self):
        """A population seeded with quarantine-bound genomes still
        completes (the incumbent carries the generation)."""
        search = _search()
        res = search.run()
        assert res.evaluations > 0
        # whatever was quarantined never crashed the run
        assert all(isinstance(f, TrialFailure) for f in res.failed)


class TestSearchQuality:
    def test_winner_never_loses_to_the_incumbent(self):
        search = _search()
        res = search.run()
        incumbent = search._evaluate_quarantined(
            search.baseline_genome()
        )
        assert incumbent is not None
        assert res.best.predicted_time <= incumbent.predicted_time

    def test_memo_dedupes_across_generations(self):
        res = _search().run()
        # elites are re-scored every generation: without the memo that
        # would be a re-probe; with it, it's a hit
        assert res.memo_hits > 0

    def test_max_feasible_levels(self):
        assert _max_feasible_levels(64) == 6
        assert _max_feasible_levels(48) == 5
        assert _max_feasible_levels(6) == 2


class TestParetoFront:
    def _ev(self, ct, cyc, tag):
        spec = CycleSpec(
            (LevelSpec(1, 0, 0.8), LevelSpec(tag, 1, 0.8))
        )
        g = Genome(spec=spec, tile_shape=(8, 64), group_limit=4)
        return Evaluation(
            genome=g,
            rho=0.5,
            cycles_to_tol=cyc,
            cycle_time=ct,
            predicted_time=ct * cyc,
        )

    def test_dominated_points_are_dropped(self):
        fast_cheap = self._ev(1.0, 10.0, 1)
        dominated = self._ev(2.0, 20.0, 2)
        tradeoff = self._ev(0.5, 30.0, 3)
        front = pareto_front([fast_cheap, dominated, tradeoff])
        assert dominated not in front
        assert fast_cheap in front and tradeoff in front

    def test_front_sorted_by_predicted_time(self):
        evs = [self._ev(1.0, 10.0, 1), self._ev(0.5, 30.0, 2)]
        front = pareto_front(evs)
        times = [e.predicted_time for e in front]
        assert times == sorted(times)


class TestMeasuredRerank:
    def test_rerank_through_planned_rungs(self):
        """The re-rank walks a real DegradationLadder; restricting it
        to planned-tier rungs keeps the test JIT-free."""
        log = IncidentLog()
        search = _search(n=32, log=log)
        res = search.run()
        ladder = DegradationLadder(
            variants=("polymg-opt+", "polymg-naive"), log=log
        )
        res = search.rerank_measured(res, repeats=1, ladder=ladder)
        assert res.measured, "no finalist could be measured"
        assert res.best_measured is res.measured[0]
        for m in res.measured:
            assert m.variant in ("polymg-opt+", "polymg-naive")
            assert m.time_to_solution > 0.0
            assert m.final_residual <= search.settings.tol_reduction * 10
            assert m.cycles >= 1
        # the winner is now the measured one
        assert (
            res.winning_genome().fingerprint()
            == res.best_measured.genome.fingerprint()
        )

    def test_omega_grid_is_discrete_and_bounded(self):
        assert OMEGA_GRID[0] == 0.6 and OMEGA_GRID[-1] == 1.2
        assert len(set(OMEGA_GRID)) == len(OMEGA_GRID)
