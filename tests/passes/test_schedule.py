"""Tests for the scheduling pass (timestamps)."""

from repro.config import PolyMgConfig
from repro.ir.dag import PipelineDAG
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.passes.grouping import auto_group
from repro.passes.schedule import PipelineSchedule


def make_schedule(cycle="V", fuse=True):
    opts = MultigridOptions(cycle=cycle, n1=2, n2=2, n3=2, levels=3)
    pipe = build_poisson_cycle(2, 16, opts)
    dag = PipelineDAG([pipe.output], params=pipe.params)
    cfg = PolyMgConfig(fuse=fuse, tile_sizes={2: (8, 8)})
    grouping = auto_group(dag, cfg)
    return grouping, PipelineSchedule(grouping)


class TestPipelineSchedule:
    def test_group_times_are_topological(self):
        grouping, sched = make_schedule()
        times = [sched.time_of_group(g) for g in grouping.groups]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_stage_times_respect_dependences(self):
        grouping, sched = make_schedule()
        dag = grouping.dag
        for group in grouping.groups:
            for stage in group.stages:
                for producer in dag.producers_of(stage):
                    if producer in group:
                        assert sched.time_of_stage(producer) < (
                            sched.time_of_stage(stage)
                        )

    def test_liveout_time_is_group_time(self):
        grouping, sched = make_schedule()
        for group in grouping.groups:
            for out in group.live_outs():
                assert sched.liveout_time(out) == sched.time_of_group(
                    group
                )

    def test_unfused_schedule_is_stage_order(self):
        grouping, sched = make_schedule(fuse=False)
        assert all(g.size == 1 for g in grouping.groups)
        for group in grouping.groups:
            assert sched.time_of_stage(group.stages[0]) == 0

    def test_consumers_scheduled_after_producers_across_groups(self):
        grouping, sched = make_schedule(cycle="W")
        dag = grouping.dag
        for stage in dag.stages:
            sg = grouping.group_of[stage]
            for producer in dag.producers_of(stage):
                if producer.is_input:
                    continue
                pg = grouping.group_of[producer]
                assert sched.time_of_group(pg) <= sched.time_of_group(sg)
