"""Tests for greedy auto-grouping (fusion) and group geometry."""


from repro.config import PolyMgConfig
from repro.ir.dag import PipelineDAG
from repro.ir.domain import Box
from repro.lang.expr import Case
from repro.lang.function import Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.stencil import Stencil, TStencil
from repro.lang.types import Double, Int
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.passes.grouping import auto_group
from repro.passes.groups import Group


def smooth_chain(steps=4, n_val=32):
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    v = Grid(Double, "V", [n + 2, n + 2])
    f = Grid(Double, "F", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    w = TStencil(([y, x], [ext, ext]), Double, steps, evolving=v)
    interior = (y >= 1) & (y <= n) & (x >= 1) & (x <= n)
    w.defn = [
        Case(
            interior,
            v(y, x)
            - 0.2
            * (
                Stencil(v, (y, x), [[0, -1, 0], [-1, 4, -1], [0, -1, 0]])
                - f(y, x)
            ),
        ),
        v(y, x),
    ]
    dag = PipelineDAG([w.last], params={"N": n_val})
    return dag, w


class TestAutoGroup:
    def test_no_fuse_one_group_per_stage(self):
        dag, w = smooth_chain(4)
        res = auto_group(dag, PolyMgConfig(fuse=False))
        assert len(res.groups) == 4
        res.validate()

    def test_chain_fuses_up_to_limit(self):
        dag, w = smooth_chain(6)
        cfg = PolyMgConfig(group_size_limit=3, tile_sizes={2: (16, 16)})
        res = auto_group(dag, cfg)
        assert all(g.size <= 3 for g in res.groups)
        assert len(res.groups) == 2
        res.validate()

    def test_full_fusion_when_allowed(self):
        dag, w = smooth_chain(4)
        cfg = PolyMgConfig(
            group_size_limit=10,
            overlap_threshold=5.0,
            tile_sizes={2: (16, 16)},
        )
        res = auto_group(dag, cfg)
        assert len(res.groups) == 1
        assert res.groups[0].anchor is w.last

    def test_overlap_threshold_blocks_merging(self):
        dag, w = smooth_chain(8, n_val=64)
        tight = PolyMgConfig(
            group_size_limit=20,
            overlap_threshold=0.01,
            tile_sizes={2: (8, 8)},
        )
        res = auto_group(dag, tight)
        assert len(res.groups) == 8  # every merge exceeds 1% redundancy

    def test_group_order_topological(self):
        opts = MultigridOptions(cycle="W", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 16, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        res = auto_group(dag, PolyMgConfig(tile_sizes={2: (8, 8)}))
        res.validate()
        seen = set()
        for g in res.groups:
            for pg in res.producers_of_group(g):
                assert id(pg) in seen
            seen.add(id(g))

    def test_diamond_isolation(self):
        opts = MultigridOptions(cycle="V", n1=3, n2=2, n3=3, levels=3)
        pipe = build_poisson_cycle(2, 16, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        cfg = PolyMgConfig(
            diamond_smoothing=True, tile_sizes={2: (8, 8)}
        )
        res = auto_group(dag, cfg)
        for g in res.groups:
            chains = {
                id(getattr(s, "tstencil", None)) for s in g.stages
            }
            has_smooth = any(
                getattr(s, "tstencil", None) is not None
                for s in g.stages
            )
            if has_smooth:
                assert len(chains) == 1


class TestGroupGeometry:
    def test_scales_through_restrict(self):
        opts = MultigridOptions(cycle="V", n1=2, n2=1, n3=2, levels=2)
        pipe = build_poisson_cycle(2, 16, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        defect = next(s for s in dag.stages if s.stage_kind() == "defect")
        restrict = next(
            s for s in dag.stages if s.stage_kind() == "restrict"
        )
        g = Group(dag, [defect, restrict])
        scales = g.scales()
        assert scales[restrict] == (1, 1)
        assert scales[defect] == (2, 2)

    def test_tile_needs_grow_backwards(self):
        dag, w = smooth_chain(4)
        g = Group(dag, w.steps)
        tile = Box.from_bounds([(8, 15), (8, 15)])
        needs = g.tile_needs(tile, clamp=False)
        # each earlier step needs one more halo cell per side
        for i, s in enumerate(reversed(w.steps)):
            box = needs[s]
            assert box.intervals[0].lb == 8 - i
            assert box.intervals[0].ub == 15 + i

    def test_tile_regions_cover_domain(self):
        dag, w = smooth_chain(3, n_val=16)
        g = Group(dag, w.steps)
        dom = w.last.domain_box({"N": 16})
        covered = []

        for ylo in range(0, 18, 6):
            for xlo in range(0, 18, 6):
                tile = Box.from_bounds(
                    [
                        (ylo, min(ylo + 5, 17)),
                        (xlo, min(xlo + 5, 17)),
                    ]
                )
                regions = g.tile_regions(tile)
                covered.append(regions[w.last])
        from repro.ir.domain import box_union_volume

        assert box_union_volume(covered) == dom.volume()

    def test_redundancy_monotone_in_depth(self):
        dag4, w4 = smooth_chain(4)
        dag8, w8 = smooth_chain(8)
        g4 = Group(dag4, w4.steps)
        g8 = Group(dag8, w8.steps)
        r4 = g4.redundancy((8, 8))
        r8 = g8.redundancy((8, 8))
        assert 0 < r4 < r8

    def test_live_outs(self):
        dag, w = smooth_chain(4)
        g = Group(dag, w.steps)
        assert g.live_outs() == [w.last]
        assert set(g.internal_stages()) == set(w.steps[:-1])
