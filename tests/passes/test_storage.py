"""Tests for the storage passes: Algorithms 2/3, scratch and array
classes, and the paper's Figure 7 scenario."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import PolyMgConfig
from repro.ir.dag import PipelineDAG
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.passes.grouping import auto_group
from repro.passes.schedule import PipelineSchedule
from repro.passes.storage import (
    classify_arrays,
    classify_scratch_shapes,
    get_last_use_map,
    plan_storage,
    remap_storage,
)


class FakeFunc:
    """Minimal stand-in for Function in algorithm-level tests."""

    _uid = 0

    def __init__(self, name, dtype="Double"):
        FakeFunc._uid += 1
        self.uid = FakeFunc._uid
        self.name = name
        self.dtype = type("D", (), {"name": dtype})()

    def __repr__(self):
        return self.name

    def __hash__(self):
        return hash(self.uid)


def linear_chain(n):
    """f0 -> f1 -> ... -> f(n-1), each consumed only by the next."""
    funcs = [FakeFunc(f"f{i}") for i in range(n)]
    ts = {f: i for i, f in enumerate(funcs)}
    users = {
        f: [funcs[i + 1]] if i + 1 < n else []
        for i, f in enumerate(funcs)
    }
    return funcs, ts, users


class TestLastUseMap:
    def test_chain(self):
        funcs, ts, users = linear_chain(4)
        m = get_last_use_map(funcs, ts, lambda f: users[f])
        assert m[1] == [funcs[0]]
        assert m[3] == [funcs[2], funcs[3]]  # f3 unused -> dies at 3

    def test_fanout(self):
        a, b, c = FakeFunc("a"), FakeFunc("b"), FakeFunc("c")
        ts = {a: 0, b: 1, c: 2}
        users = {a: [b, c], b: [c], c: []}
        m = get_last_use_map([a, b, c], ts, lambda f: users[f])
        assert m[2] == [a, b, c]

    def test_user_outside_timestamps_ignored(self):
        a, b = FakeFunc("a"), FakeFunc("b")
        ghost = FakeFunc("ghost")
        ts = {a: 0, b: 1}
        m = get_last_use_map([a, b], ts, lambda f: [ghost])
        assert m[0] == [a] and m[1] == [b]


class TestRemapStorage:
    def test_chain_uses_two_buffers(self):
        """A dependence chain where each value dies after its single use
        needs exactly two alternating buffers — the paper's Figure 7
        observation."""
        funcs, ts, users = linear_chain(6)
        cls = {f: "same" for f in funcs}
        storage = remap_storage(funcs, ts, cls, lambda f: users[f])
        assert len(set(storage.values())) == 2
        # consecutive stages must not share (producer read by consumer)
        for i in range(5):
            assert storage[funcs[i]] != storage[funcs[i + 1]]

    def test_classes_do_not_mix(self):
        funcs, ts, users = linear_chain(4)
        cls = {f: ("A" if i % 2 else "B") for i, f in enumerate(funcs)}
        storage = remap_storage(funcs, ts, cls, lambda f: users[f])
        a_ids = {storage[f] for f in funcs if cls[f] == "A"}
        b_ids = {storage[f] for f in funcs if cls[f] == "B"}
        assert not (a_ids & b_ids)

    def test_long_liveness_blocks_reuse(self):
        a, b, c = FakeFunc("a"), FakeFunc("b"), FakeFunc("c")
        ts = {a: 0, b: 1, c: 2}
        users = {a: [c], b: [c], c: []}  # a live until t=2
        storage = remap_storage(
            [a, b, c], ts, {f: "s" for f in (a, b, c)}, lambda f: users[f]
        )
        assert storage[a] != storage[b]
        assert storage[c] != storage[a] and storage[c] != storage[b]

    def test_equal_timestamps_no_same_time_reuse(self):
        """Two live-outs scheduled at their group's (equal) time must
        not recycle an array that dies at that same time."""
        a = FakeFunc("a")
        b1, b2 = FakeFunc("b1"), FakeFunc("b2")
        ts = {a: 0, b1: 1, b2: 1}
        users = {a: [b1], b1: [], b2: []}
        storage = remap_storage(
            [a, b1, b2], ts, {f: "s" for f in (a, b1, b2)}, lambda f: users[f]
        )
        assert storage[b1] != storage[a]
        assert storage[b2] != storage[a]
        assert storage[b1] != storage[b2]

    @given(st.integers(2, 24), st.data())
    def test_no_two_live_funcs_share_property(self, n, data):
        """Random DAG liveness: any two functions whose live ranges
        overlap must get different arrays (within a class)."""
        funcs = [FakeFunc(f"g{i}") for i in range(n)]
        ts = {f: i for i, f in enumerate(funcs)}
        users_map = {}
        for i, f in enumerate(funcs):
            later = funcs[i + 1 :]
            users_map[f] = (
                data.draw(
                    st.lists(st.sampled_from(later), max_size=3, unique=True)
                )
                if later
                else []
            )
        cls = {f: "c" for f in funcs}
        storage = remap_storage(funcs, ts, cls, lambda f: users_map[f])
        last_use = {
            f: max([ts[f]] + [ts[u] for u in users_map[f]]) for f in funcs
        }
        for i, f in enumerate(funcs):
            for g in funcs[i + 1 :]:
                if storage[f] == storage[g]:
                    # g defined at ts[g]; f must be dead strictly before
                    assert last_use[f] < ts[g]


class TestClassification:
    def test_scratch_slack_bucketing(self):
        a, b, c = FakeFunc("a"), FakeFunc("b"), FakeFunc("c")
        shapes = {a: (40, 520), b: (42, 522), c: (80, 520)}
        assignment, classes = classify_scratch_shapes(shapes, slack=4)
        assert assignment[a] is assignment[b]
        assert assignment[c] is not assignment[a]
        assert assignment[a].shape == (42, 522)  # per-dim max

    def test_scratch_dtype_separation(self):
        a = FakeFunc("a", "Double")
        b = FakeFunc("b", "Float")
        assignment, _ = classify_scratch_shapes(
            {a: (8, 8), b: (8, 8)}, slack=0
        )
        assert assignment[a] is not assignment[b]

    def test_array_classes_parametric(self):
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 16, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        smooths = [s for s in dag.stages if s.stage_kind() == "smooth"]
        assignment, classes = classify_arrays(smooths)
        # same level -> same class; different level -> different class
        by_class: dict[int, set] = {}
        for s in smooths:
            by_class.setdefault(id(assignment[s]), set()).add(
                s.domain_box(pipe.params).shape()
            )
        for shapes in by_class.values():
            assert len(shapes) == 1


class TestPlanStorage:
    def _plan(self, config, smoothing=(4, 4, 4), cycle="V"):
        opts = MultigridOptions(
            cycle=cycle,
            n1=smoothing[0],
            n2=smoothing[1],
            n3=smoothing[2],
            levels=3,
        )
        pipe = build_poisson_cycle(2, 32, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        grouping = auto_group(dag, config)
        schedule = PipelineSchedule(grouping)
        return plan_storage(grouping, schedule, config), grouping

    def test_intra_reuse_reduces_buffers(self):
        cfg = PolyMgConfig(tile_sizes={2: (8, 32)})
        plan, grouping = self._plan(cfg)
        assert (
            sum(p.buffer_count() for p in plan.scratch.values())
            < plan.scratch_buffers_without_reuse
        )

    def test_figure7_two_scratchpads(self):
        """Figure 7: an interpolation and a correction step fused with
        four post-smoothing steps (same level) need only two scratch
        buffers, because no node's value is consumed by more than one
        in-group node."""
        from repro.multigrid.cycles import _CycleBuilder
        from repro.lang.function import Grid
        from repro.lang.types import Double
        from repro.passes.groups import Group
        from repro.passes.storage import (
            _scratch_shapes_for_group,
            classify_scratch_shapes,
        )

        opts = MultigridOptions(cycle="V", n1=0, n2=2, n3=4, levels=2)
        b = _CycleBuilder(2, 32, opts)
        V = Grid(Double, "V", [b.param + 2, b.param + 2])
        E = Grid(Double, "E", [b.param / 2 + 2, b.param / 2 + 2])
        p = b.interpolate(E, 1)
        c = b.correct(V, p, 1)
        F = Grid(Double, "F", [b.param + 2, b.param + 2])
        s = b.smoother(c, F, 1, 4, "post")
        dag = PipelineDAG([s], params={"N": 32})
        group = Group(dag, dag.stages)  # interp, correct, 4 smooths
        assert group.size == 6

        cfg = PolyMgConfig(tile_sizes={2: (8, 32)})
        shapes = _scratch_shapes_for_group(group, cfg)
        internal = list(shapes)  # everything but the final smooth
        assert len(internal) == 5
        cls_map, _ = classify_scratch_shapes(shapes, slack=2 * group.size)
        schedule_ts = {st: i for i, st in enumerate(group.stages)}
        storage = remap_storage(
            internal,
            schedule_ts,
            {f: (cls_map[f].dtype_name, cls_map[f].key) for f in internal},
            lambda f: [u for u in dag.consumers_of(f) if u in group],
        )
        assert len(set(storage.values())) == 2

    def test_inter_reuse_reduces_arrays(self):
        with_reuse = PolyMgConfig(tile_sizes={2: (8, 32)})
        without = PolyMgConfig(
            tile_sizes={2: (8, 32)}, inter_group_reuse=False
        )
        p1, _ = self._plan(with_reuse, cycle="W")
        p2, _ = self._plan(without, cycle="W")
        assert p1.full_arrays_with_reuse < p2.full_arrays_with_reuse
        assert (
            p1.full_array_bytes_with_reuse
            < p2.full_array_bytes_without_reuse
        )

    def test_outputs_never_reused(self):
        cfg = PolyMgConfig(tile_sizes={2: (8, 32)})
        plan, grouping = self._plan(cfg)
        dag = grouping.dag
        out_stage = dag.outputs[0]
        out_id = plan.array_of[out_stage]
        sharers = [
            s for s, aid in plan.array_of.items() if aid == out_id
        ]
        assert sharers == [out_stage]

    def test_every_liveout_has_array(self):
        cfg = PolyMgConfig(tile_sizes={2: (8, 32)})
        plan, grouping = self._plan(cfg, cycle="W")
        for group in grouping.groups:
            for stage in group.live_outs():
                aid = plan.array_of[stage]
                shape = plan.array_shapes[aid]
                need = stage.domain_box(grouping.dag.param_bindings).shape()
                assert all(a >= b for a, b in zip(shape, need))
