"""Pass-manager tests: static ordering validation, per-pass
instrumentation, verifier interleaving, and IR snapshots."""

import json

import pytest

from repro import build_poisson_cycle
from repro.errors import CompileError, PassOrderingError
from repro.multigrid.reference import MultigridOptions
from repro.passes.manager import (
    BuildDagPass,
    CompilationContext,
    GroupingPass,
    Pass,
    PassManager,
    default_passes,
)
from repro.variants import polymg_opt_plus

N = 32
CFG = polymg_opt_plus(tile_sizes={2: (8, 16)})

PLAIN_SEQUENCE = ["build-dag", "grouping", "scheduling", "storage", "backend"]
VERIFIED_SEQUENCE = [
    "build-dag",
    "grouping",
    "scheduling",
    "verify-schedule",
    "storage",
    "verify-storage",
    "backend",
    "verify-tiling",
]


@pytest.fixture
def pipe():
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    return build_poisson_cycle(2, N, opts)


def _context(pipe, config=CFG):
    return CompilationContext(
        outputs=(pipe.output,),
        params=dict(pipe.params),
        config=config,
        name=pipe.name,
    )


class _LazyPass(Pass):
    """Declares an artifact but never produces it."""

    name = "lazy"
    produces = ("thing",)

    def run(self, ctx):
        pass


class TestOrderingValidation:
    def test_missing_producer_rejected_before_running(self):
        # grouping requires "dag" and nothing earlier produces it
        with pytest.raises(PassOrderingError) as exc:
            PassManager([GroupingPass()])
        assert "no earlier pass" in str(exc.value)

    def test_duplicate_producer_rejected(self):
        with pytest.raises(PassOrderingError) as exc:
            PassManager([BuildDagPass(), BuildDagPass()])
        assert "same artifact" in str(exc.value)

    def test_default_pipelines_validate(self):
        PassManager(default_passes(CFG))
        PassManager(default_passes(CFG.with_(verify_level="full")))

    def test_pass_must_produce_what_it_declares(self, pipe):
        manager = PassManager([_LazyPass()])
        with pytest.raises(CompileError) as exc:
            manager.run(_context(pipe))
        assert "without producing" in str(exc.value)

    def test_context_get_before_produce(self, pipe):
        ctx = _context(pipe)
        with pytest.raises(PassOrderingError):
            ctx.get("dag")
        with pytest.raises(PassOrderingError):
            ctx.grouping

    def test_context_rejects_double_produce(self, pipe):
        ctx = _context(pipe)
        ctx.produce("dag", object(), by="a")
        with pytest.raises(PassOrderingError) as exc:
            ctx.produce("dag", object(), by="b")
        assert "twice" in str(exc.value)
        assert ctx.produced_by["dag"] == "a"


class TestDefaultSequences:
    def test_verifiers_off_by_default(self):
        names = [p.name for p in default_passes(CFG)]
        assert names == PLAIN_SEQUENCE

    @pytest.mark.parametrize("level", ["cheap", "full"])
    def test_verifiers_interleaved(self, level):
        names = [p.name for p in default_passes(CFG.with_(verify_level=level))]
        assert names == VERIFIED_SEQUENCE


class TestReport:
    def test_report_covers_every_pass(self, pipe):
        compiled = pipe.compile(CFG)
        assert compiled.report.pass_names() == PLAIN_SEQUENCE

    def test_report_covers_verifier_passes_at_full(self, pipe):
        compiled = pipe.compile(CFG.with_(verify_level="full"))
        report = compiled.report
        assert report.pass_names() == VERIFIED_SEQUENCE
        assert all(r.wall_time >= 0.0 for r in report.passes)
        assert report.total_wall_time >= sum(
            r.wall_time for r in report.passes
        )
        assert report.fingerprint

    def test_pass_time(self, pipe):
        report = pipe.compile(CFG).report
        assert report.pass_time("grouping") >= 0.0
        with pytest.raises(KeyError):
            report.pass_time("no-such-pass")

    def test_artifact_summaries_recorded(self, pipe):
        report = pipe.compile(CFG).report
        by_name = {r.name: r for r in report.passes}
        assert "stages" in by_name["build-dag"].outputs["dag"]
        assert "groups" in by_name["grouping"].outputs["grouping"]
        assert "arrays" in by_name["storage"].outputs["storage"]
        # inputs of a later pass summarize what it consumed
        assert "groups" in by_name["scheduling"].inputs["grouping"]

    def test_to_json_roundtrip(self, pipe):
        report = pipe.compile(CFG.with_(verify_level="cheap")).report
        data = json.loads(report.to_json())
        assert data["pipeline"] == pipe.name
        assert data["fingerprint"] == report.fingerprint
        assert [p["name"] for p in data["passes"]] == VERIFIED_SEQUENCE
        assert data["cache_hits"] == report.cache_hits


class TestSnapshots:
    def test_snapshot_ir_records_dumps(self, pipe):
        compiled = pipe.compile(CFG, snapshot_ir=True)
        by_name = {r.name: r for r in compiled.report.passes}
        assert by_name["build-dag"].snapshot  # dag.summary()
        assert "group 0" in by_name["grouping"].snapshot
        assert by_name["scheduling"].snapshot is None  # none defined
        assert "snapshot" in json.loads(compiled.report.to_json())[
            "passes"
        ][0]

    def test_snapshots_off_by_default(self, pipe):
        compiled = pipe.compile(CFG, cache=False)
        assert all(r.snapshot is None for r in compiled.report.passes)
