"""Fault-injection harness: every fault class is caught, and the
guarded executor degrades to the reference answer instead of returning
garbage.

The whole suite runs over a pipeline matrix — 2-D V-cycle, 2-D W-cycle,
and a 3-D V-cycle — so the verifiers and sentinels are exercised on
every cycle shape and rank the builder produces, not just the 2-D
V-cycle happy path.

``REPRO_VERIFY_LEVEL`` selects the in-compiler verifier level for the
suite's compiles (default ``off`` — the tests call the verifiers
explicitly); CI runs this file once more at ``full`` to prove the
interleaved verifier passes coexist with fault injection."""

import os

import numpy as np
import pytest

from repro import MultigridOptions, build_poisson_cycle, verify_compiled
from repro.backend.guards import GuardedPipeline
from repro.errors import (
    NumericalDivergenceError,
    ReproError,
    ScheduleLegalityError,
    StorageSoundnessError,
)
from repro.multigrid.reference import reference_cycle
from repro.variants import polymg_naive, polymg_opt_plus
from repro.verify.faults import (
    FAULT_INJECTORS,
    inject_ghost_shrink,
    inject_group_reorder,
    inject_nan_poison,
    inject_slot_swap,
    inject_transient_nan_poison,
)

from tests.conftest import make_rhs

CFG = polymg_opt_plus(
    tile_sizes={2: (8, 16), 3: (4, 4, 8)},
    verify_level=os.environ.get("REPRO_VERIFY_LEVEL", "off"),
)

# (ndim, N, opts): every cycle shape/rank the builder produces
PIPELINES = {
    "2d-V": (2, 32, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)),
    "2d-W": (2, 32, MultigridOptions(cycle="W", n1=2, n2=2, n3=2, levels=3)),
    "3d-V": (3, 8, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=2)),
}


@pytest.fixture(params=sorted(PIPELINES), ids=sorted(PIPELINES))
def pipe(request):
    ndim, n, opts = PIPELINES[request.param]
    return build_poisson_cycle(ndim, n, opts)


@pytest.fixture
def problem(pipe, rng):
    f = make_rhs(rng, pipe.ndim, pipe.N)
    return pipe.make_inputs(np.zeros_like(f), f), f


class TestEachFaultIsCaught:
    def test_slot_swap_caught_by_storage_verifier(self, pipe):
        compiled = pipe.compile(CFG)
        record = inject_slot_swap(compiled)
        assert record.kind == "slot-swap"
        with pytest.raises(StorageSoundnessError) as exc:
            verify_compiled(compiled, "cheap")
        assert "still live" in str(exc.value)

    def test_ghost_shrink_caught_by_storage_verifier(self, pipe):
        compiled = pipe.compile(CFG)
        record = inject_ghost_shrink(compiled)
        assert record.kind == "ghost-shrink"
        with pytest.raises(StorageSoundnessError) as exc:
            verify_compiled(compiled, "cheap")
        assert "cover" in str(exc.value)

    def test_group_reorder_caught_by_schedule_verifier(self, pipe):
        compiled = pipe.compile(CFG)
        record = inject_group_reorder(compiled)
        assert record.kind == "group-reorder"
        with pytest.raises(ScheduleLegalityError):
            verify_compiled(compiled, "cheap")

    def test_nan_poison_caught_by_runtime_sentinel(self, pipe, problem):
        inputs, _ = problem
        compiled = pipe.compile(CFG.with_(runtime_guards=True))
        record = inject_nan_poison(compiled)
        assert record.kind == "nan-poison"
        # the artifact itself is clean: compile-time verifiers pass
        verify_compiled(compiled, "full")
        with pytest.raises(NumericalDivergenceError) as exc:
            compiled.execute(inputs)
        assert "non-finite" in str(exc.value)

    def test_nan_poison_silent_without_guards(self, pipe, problem):
        """The sentinel is what fires — with guards off the poisoned
        pipeline silently returns garbage."""
        inputs, _ = problem
        compiled = pipe.compile(CFG)  # runtime_guards=False
        inject_nan_poison(compiled)
        out = compiled.execute(inputs)[pipe.output.name]
        assert np.isnan(out).any()

    def test_transient_nan_poison_fires_exactly_once(self, pipe, problem):
        inputs, _ = problem
        compiled = pipe.compile(CFG.with_(runtime_guards=True))
        record = inject_transient_nan_poison(compiled, invocation=2)
        assert record.kind == "nan-poison-once"
        clean_before = compiled.execute(inputs)[pipe.output.name].copy()
        with pytest.raises(NumericalDivergenceError):
            compiled.execute(inputs)
        clean_after = compiled.execute(inputs)[pipe.output.name]
        assert np.array_equal(clean_before, clean_after)

    def test_faulted_execution_strands_no_pool_buffers(
        self, pipe, problem
    ):
        """A mid-execute fault must return every pooled array — the
        resilience layer's leak accounting relies on it."""
        inputs, _ = problem
        compiled = pipe.compile(CFG.with_(runtime_guards=True))
        inject_nan_poison(compiled)
        with pytest.raises(NumericalDivergenceError):
            compiled.execute(inputs)
        assert compiled.allocator.outstanding == 0
        compiled.allocator.assert_no_leaks()


class TestGuardedFallback:
    @pytest.mark.parametrize("kind", sorted(FAULT_INJECTORS))
    def test_fallback_matches_reference(self, pipe, problem, kind):
        inputs, f = problem
        guarded = GuardedPipeline(pipe, CFG)
        FAULT_INJECTORS[kind](guarded.compiled)

        out = guarded.execute(inputs)[pipe.output.name]

        assert guarded.faulted
        assert len(guarded.incidents) == 1
        incident = guarded.incidents[0]
        assert isinstance(incident.error, ReproError)
        assert incident.fallback == "polymg-naive"

        # bit-identical to the trusted naive variant (the reference
        # execution path of the compiled system) ...
        naive = pipe.compile(polymg_naive())
        assert np.array_equal(out, naive.execute(inputs)[pipe.output.name])
        # ... and to the independent (uncompiled) reference solver
        ref = reference_cycle(
            np.zeros_like(f), f, 1.0 / (pipe.N + 1), pipe.opts
        )
        assert np.array_equal(out, ref)

    def test_clean_guarded_run_has_no_incidents(self, pipe, problem):
        inputs, _ = problem
        guarded = GuardedPipeline(pipe, CFG)
        out = guarded.execute(inputs)[pipe.output.name]
        assert not guarded.faulted
        naive = pipe.compile(polymg_naive())
        assert np.array_equal(out, naive.execute(inputs)[pipe.output.name])

    def test_guarded_pipeline_keeps_serving_after_fault(
        self, pipe, problem
    ):
        inputs, _ = problem
        guarded = GuardedPipeline(pipe, CFG)
        inject_nan_poison(guarded.compiled)
        first = guarded.execute(inputs)[pipe.output.name].copy()
        second = guarded.execute(inputs)[pipe.output.name]
        assert np.array_equal(first, second)
        assert len(guarded.incidents) == 2
        assert guarded.invocations == 2

    def test_verify_verdict_memoized_single_incident(
        self, pipe, problem, monkeypatch
    ):
        """A statically-bad artifact is verified once: one incident,
        every later invocation routes straight to the fallback without
        paying ``verify_compiled`` again."""
        import repro.verify as verify_mod

        calls = {"n": 0}
        real = verify_mod.verify_compiled

        def counting(compiled, level="full"):
            calls["n"] += 1
            return real(compiled, level)

        monkeypatch.setattr(verify_mod, "verify_compiled", counting)

        inputs, _ = problem
        guarded = GuardedPipeline(pipe, CFG)
        inject_ghost_shrink(guarded.compiled)
        first = guarded.execute(inputs)[pipe.output.name].copy()
        second = guarded.execute(inputs)[pipe.output.name]
        third = guarded.execute(inputs)[pipe.output.name]

        assert calls["n"] == 1  # verdict memoized, not re-verified
        assert len(guarded.incidents) == 1  # single incident, not 3
        assert guarded.invocations == 3
        assert np.array_equal(first, second)
        assert np.array_equal(first, third)

    def test_passing_verdict_memoized_too(self, pipe, problem, monkeypatch):
        import repro.verify as verify_mod

        calls = {"n": 0}
        real = verify_mod.verify_compiled

        def counting(compiled, level="full"):
            calls["n"] += 1
            return real(compiled, level)

        monkeypatch.setattr(verify_mod, "verify_compiled", counting)

        inputs, _ = problem
        guarded = GuardedPipeline(pipe, CFG)
        guarded.execute(inputs)
        guarded.execute(inputs)
        assert calls["n"] == 1
        assert not guarded.faulted


class TestInjectorsRequireASite:
    def test_slot_swap_needs_fused_scratch(self, pipe):
        compiled = pipe.compile(polymg_naive())
        with pytest.raises(ValueError):
            inject_slot_swap(compiled)

    def test_nan_poison_needs_internal_stages(self, pipe):
        compiled = pipe.compile(polymg_naive())
        with pytest.raises(ValueError):
            inject_nan_poison(compiled)
