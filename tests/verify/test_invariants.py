"""Pass-level verifiers: clean artifacts pass, the knob gates the cost."""

import numpy as np
import pytest

from repro import MultigridOptions, build_poisson_cycle, verify_compiled
from repro.config import PolyMgConfig, VERIFY_LEVELS
from repro.errors import (
    CompileError,
    ReproError,
    ScheduleLegalityError,
    StorageSoundnessError,
)
from repro.variants import (
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)
from repro.verify.invariants import (
    verify_schedule,
    verify_storage,
    verify_tiling,
)


def small_pipe(ndim=2, n=32, levels=3):
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=levels)
    return build_poisson_cycle(ndim, n, opts)


class TestCleanPipelinesVerify:
    @pytest.mark.parametrize(
        "factory",
        [polymg_naive, polymg_opt, polymg_opt_plus, polymg_dtile_opt_plus],
    )
    def test_every_variant_compiles_under_full_verification(self, factory):
        pipe = small_pipe()
        compiled = pipe.compile(
            factory(verify_level="full", tile_sizes={2: (8, 16)})
        )
        # and the combined post-hoc entry point agrees
        verify_compiled(compiled, "full")

    def test_3d_pipeline_verifies(self):
        pipe = small_pipe(ndim=3, n=16)
        pipe.compile(
            polymg_opt_plus(verify_level="full", tile_sizes={3: (4, 8, 8)})
        )

    def test_w_cycle_verifies(self):
        opts = MultigridOptions(cycle="W", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 32, opts)
        pipe.compile(polymg_opt_plus(verify_level="full"))

    def test_verified_compile_executes_correctly(self, rng):
        pipe = small_pipe()
        n = 32
        f = np.zeros((n + 2, n + 2))
        f[1:-1, 1:-1] = rng.standard_normal((n, n))
        inputs = pipe.make_inputs(np.zeros_like(f), f)
        checked = pipe.compile(polymg_opt_plus(verify_level="full"))
        unchecked = pipe.compile(polymg_opt_plus())
        assert np.array_equal(
            checked.execute(inputs)[pipe.output.name],
            unchecked.execute(inputs)[pipe.output.name],
        )


class TestVerifyKnob:
    def test_unknown_level_rejected(self):
        with pytest.raises(CompileError):
            PolyMgConfig(verify_level="paranoid")
        with pytest.raises(CompileError):
            verify_compiled(
                small_pipe().compile(polymg_opt_plus()), "paranoid"
            )

    def test_levels_are_ordered(self):
        assert VERIFY_LEVELS == ("off", "cheap", "full")

    def test_off_skips_verifiers_entirely(self, monkeypatch):
        import repro.verify.invariants as inv

        def boom(*args, **kwargs):
            raise AssertionError("verifier ran at level=off")

        monkeypatch.setattr(inv, "verify_schedule", boom)
        monkeypatch.setattr(inv, "verify_storage", boom)
        monkeypatch.setattr(inv, "verify_tiling", boom)
        small_pipe().compile(polymg_opt_plus(verify_level="off"))

    def test_cheap_and_full_invoke_verifiers(self, monkeypatch):
        import repro.verify.invariants as inv

        calls = []
        real = inv.verify_schedule
        monkeypatch.setattr(
            inv,
            "verify_schedule",
            lambda *a, **k: (calls.append("schedule"), real(*a, **k)),
        )
        small_pipe().compile(polymg_opt_plus(verify_level="cheap"))
        assert calls == ["schedule"]

    def test_off_verify_compiled_is_noop_even_when_corrupt(self):
        from repro.verify.faults import inject_ghost_shrink

        compiled = small_pipe().compile(polymg_opt_plus())
        inject_ghost_shrink(compiled)
        verify_compiled(compiled, "off")  # must not raise
        with pytest.raises(StorageSoundnessError):
            verify_compiled(compiled, "cheap")


class TestIndividualVerifiers:
    def test_schedule_verifier_needs_consistent_artifacts(self):
        compiled = small_pipe().compile(polymg_opt_plus())
        verify_schedule(
            compiled.grouping, compiled.schedule, pipeline="clean"
        )
        # stage timestamps shifted off their positions -> illegal
        stage = compiled.grouping.groups[0].stages[0]
        compiled.schedule.stage_time[stage] += 1
        with pytest.raises(ScheduleLegalityError):
            verify_schedule(compiled.grouping, compiled.schedule)

    def test_storage_verifier_flags_missing_scratch_slot(self):
        compiled = small_pipe().compile(polymg_opt_plus())
        for gi, group in enumerate(compiled.grouping.groups):
            internal = group.internal_stages()
            if internal:
                del compiled.storage.scratch[gi].buffer_of[internal[0]]
                break
        with pytest.raises(StorageSoundnessError):
            verify_storage(
                compiled.grouping,
                compiled.schedule,
                compiled.storage,
                compiled.config,
            )

    def test_storage_verifier_flags_dtype_mismatch(self):
        compiled = small_pipe().compile(polymg_opt_plus())
        aid = next(iter(compiled.storage.array_shapes))
        compiled.storage.array_dtypes[aid] = "float32"
        with pytest.raises(StorageSoundnessError):
            verify_storage(
                compiled.grouping,
                compiled.schedule,
                compiled.storage,
                compiled.config,
            )

    def test_tiling_verifier_flags_gapped_grid(self, monkeypatch):
        import repro.verify.invariants as inv

        compiled = small_pipe().compile(polymg_opt_plus())
        real = inv._anchor_tile_grid

        def gapped(anchor_dom, tile_shape):
            tiles = real(anchor_dom, tile_shape)
            return tiles[1:] if len(tiles) > 1 else tiles

        monkeypatch.setattr(inv, "_anchor_tile_grid", gapped)
        with pytest.raises(ReproError):
            verify_tiling(
                compiled.grouping, compiled.config, level="cheap"
            )

    def test_error_context_is_structured(self):
        err = StorageSoundnessError(
            "slot clash", group=3, stage="smooth.t1", slot=2
        )
        assert err.context == {
            "group": 3,
            "stage": "smooth.t1",
            "slot": 2,
        }
        assert "group=3" in str(err)
        assert "smooth.t1" in str(err)
        assert isinstance(err, CompileError)
        assert isinstance(err, ReproError)
