"""Autotuner fault isolation: a failing or hung trial is quarantined,
never aborting the search."""

from types import SimpleNamespace

import pytest

from repro.errors import TrialFailure
from repro.tuning.autotuner import (
    _tune,
    autotune_model,
    config_space,
    tile_space,
)
from repro.model.machine import PAPER_MACHINE
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.variants import polymg_opt_plus

FAKE_PIPE = SimpleNamespace(ndim=2)
SPACE_2D = 80  # 16 tile shapes x 5 group limits


def test_full_space_completes_with_a_forced_failure():
    poisoned = tile_space(2)[3]

    def score(cfg):
        if cfg.tile_sizes[2] == poisoned and cfg.group_size_limit == 4:
            raise RuntimeError("synthetic compile explosion")
        return float(sum(cfg.tile_sizes[2]) * cfg.group_size_limit)

    res = _tune(FAKE_PIPE, polymg_opt_plus(), score)
    assert res.configurations == SPACE_2D
    assert len(res.points) == SPACE_2D - 1
    assert len(res.failed) == 1
    failure = res.failed[0]
    assert isinstance(failure, TrialFailure)
    assert failure.context["tile_shape"] == poisoned
    assert failure.context["group_limit"] == 4
    assert "synthetic compile explosion" in failure.context["cause"]
    # the winner is still the true minimum of the surviving points
    assert res.best.score == min(p.score for p in res.points)


def test_hung_trial_times_out_and_search_continues():
    import threading

    release = threading.Event()
    slow = tile_space(2)[0]

    def score(cfg):
        if cfg.tile_sizes[2] == slow and cfg.group_size_limit == 1:
            release.wait(timeout=30)  # simulated hang
        return 1.0

    res = _tune(FAKE_PIPE, polymg_opt_plus(), score, trial_timeout=0.05)
    release.set()
    assert len(res.failed) == 1
    assert res.failed[0].context["timeout"] == 0.05
    assert res.configurations == SPACE_2D


def test_all_failures_raises_aggregate():
    def score(cfg):
        raise ValueError("nothing works")

    with pytest.raises(TrialFailure) as exc:
        _tune(FAKE_PIPE, polymg_opt_plus(), score)
    assert exc.value.context["attempted"] == SPACE_2D


def test_model_autotune_survives_injected_compile_failure(monkeypatch):
    opts = MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
    pipe = build_poisson_cycle(2, 32, opts)
    real_compile = pipe.compile
    poisoned = tile_space(2)[-1]

    def sabotaged(cfg):
        if cfg.tile_sizes[2] == poisoned:
            raise RuntimeError("injected backend fault")
        return real_compile(cfg)

    monkeypatch.setattr(pipe, "compile", sabotaged)
    res = autotune_model(pipe, polymg_opt_plus(), PAPER_MACHINE, 1)
    assert res.configurations == SPACE_2D
    assert len(res.failed) == 5  # the poisoned shape x 5 group limits
    assert all(
        f.context["tile_shape"] == poisoned for f in res.failed
    )
    assert res.best.tile_shape != poisoned


def test_config_space_size_matches_paper():
    assert sum(1 for _ in config_space(polymg_opt_plus(), 2)) == 80
    assert sum(1 for _ in config_space(polymg_opt_plus(), 3)) == 135


class TestTrialByteBudget:
    """``autotune_measured(trial_byte_budget=...)`` quarantines
    memory-hog trials as :class:`TrialFailure` via the pool's typed
    :class:`~repro.errors.PoolExhaustedError` instead of OOMing the
    sweep."""

    @pytest.fixture
    def small_pipe(self, monkeypatch):
        # one group limit -> 16 configurations, keeps the sweep fast;
        # limit 1 (no fusion) so every stage lands in a pooled full
        # array and a zero budget is guaranteed to trip
        from repro.tuning import autotuner

        monkeypatch.setattr(autotuner, "GROUP_LIMITS", (1,))
        opts = MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
        return build_poisson_cycle(2, 16, opts)

    def test_zero_budget_quarantines_every_trial(self, small_pipe, rng):
        from repro.tuning.autotuner import autotune_measured
        from tests.conftest import make_rhs

        f = make_rhs(rng, 2, 16)

        def inputs_factory():
            import numpy as np

            return small_pipe.make_inputs(np.zeros_like(f), f)

        with pytest.raises(TrialFailure) as exc:
            autotune_measured(
                small_pipe, polymg_opt_plus(), inputs_factory,
                trial_byte_budget=0,
            )
        assert exc.value.context["attempted"] == 16

    def test_generous_budget_leaves_the_sweep_intact(
        self, small_pipe, rng
    ):
        from repro.tuning.autotuner import autotune_measured
        from tests.conftest import make_rhs

        f = make_rhs(rng, 2, 16)

        def inputs_factory():
            import numpy as np

            return small_pipe.make_inputs(np.zeros_like(f), f)

        res = autotune_measured(
            small_pipe, polymg_opt_plus(), inputs_factory,
            trial_byte_budget=1 << 30,
        )
        assert res.configurations == 16
        assert not res.failed
