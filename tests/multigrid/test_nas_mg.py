"""Tests for the NAS MG implementation."""

import numpy as np
import pytest

from repro.multigrid.nas_mg import (
    NAS_A,
    NAS_C,
    NasMgSolver,
    apply_27pt,
    build_nas_mg_cycle,
    nas_rhs,
)
from repro.variants import (
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)


class TestOperators:
    def test_apply_27pt_constant_annihilation(self):
        """The A operator coefficients sum to zero: constants map to 0."""
        u = np.ones((10, 10, 10))
        out = apply_27pt(u, NAS_A)
        total = NAS_A[0] + 6 * NAS_A[1] + 12 * NAS_A[2] + 8 * NAS_A[3]
        assert np.allclose(out, total)
        assert abs(total) < 1e-12

    def test_apply_27pt_matches_direct_sum(self, rng):
        u = rng.standard_normal((6, 6, 6))
        out = apply_27pt(u, NAS_C)
        # direct computation at one interior point
        p = (2, 3, 1 + 1)
        acc = 0.0
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    acc += (
                        NAS_C[abs(dz) + abs(dy) + abs(dx)]
                        * u[p[0] + dz, p[1] + dy, p[2] + dx]
                    )
        assert np.isclose(out[p[0] - 1, p[1] - 1, p[2] - 1], acc)

    def test_rhs_structure(self):
        v = nas_rhs(16)
        assert v.shape == (18, 18, 18)
        assert (v == 1.0).sum() == 10
        assert (v == -1.0).sum() == 10
        assert np.abs(v).sum() == 20
        # deterministic
        assert np.array_equal(v, nas_rhs(16))

    def test_resid_zero_boundary(self, rng):
        u = rng.standard_normal((10, 10, 10))
        v = rng.standard_normal((10, 10, 10))
        r = NasMgSolver.resid(u, v)
        assert np.all(r[0] == 0) and np.all(r[-1] == 0)

    def test_rprj3_shapes(self, rng):
        r = np.zeros((18, 18, 18))
        r[1:-1, 1:-1, 1:-1] = rng.standard_normal((16, 16, 16))
        rc = NasMgSolver.rprj3(r)
        assert rc.shape == (10, 10, 10)
        assert np.all(rc[0] == 0)


class TestSolver:
    def test_residual_decreases(self):
        solver = NasMgSolver(32, levels=4)
        v = nas_rhs(32)
        _, norms = solver.solve(v, 4)
        assert norms[-1] < norms[0]
        assert all(b < a for a, b in zip(norms, norms[1:]))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            NasMgSolver(30, levels=4)


class TestPipeline:
    def test_all_variants_bitexact(self):
        n = 16
        solver = NasMgSolver(n, levels=3)
        v = nas_rhs(n)
        u0 = np.zeros_like(v)
        ref = solver.mg3p(u0, v)
        pipe = build_nas_mg_cycle(n, levels=3)
        tiles = {3: (4, 8, 8)}
        for factory in (
            polymg_naive,
            polymg_opt,
            polymg_opt_plus,
            polymg_dtile_opt_plus,
        ):
            compiled = pipe.compile(factory(tile_sizes=tiles))
            out = compiled.execute(pipe.make_inputs(u0, v))[
                pipe.output.name
            ]
            assert np.array_equal(out, ref), factory.__name__

    def test_iterated_cycles_bitexact(self):
        n = 16
        solver = NasMgSolver(n, levels=3)
        v = nas_rhs(n)
        pipe = build_nas_mg_cycle(n, levels=3)
        compiled = pipe.compile(polymg_opt_plus(tile_sizes={3: (4, 8, 8)}))
        u_np = np.zeros_like(v)
        u_dsl = np.zeros_like(v)
        for _ in range(3):
            u_np = solver.mg3p(u_np, v)
            u_dsl = compiled.execute(pipe.make_inputs(u_dsl, v))[
                pipe.output.name
            ]
        assert np.array_equal(u_np, u_dsl)

    def test_stage_count_structure(self):
        pipe = build_nas_mg_cycle(32, levels=4)
        # 1 resid + (L-1) rprj3 + zero+psinv + (L-2)*(zero+interp+correct
        # +resid+psinv) + top (interp+correct+resid+psinv)
        L = 4
        expected = 1 + (L - 1) + 2 + (L - 2) * 5 + 4
        assert pipe.stage_count_ == expected
