"""Tests for the reference numpy multigrid kernels."""

import numpy as np
import pytest

from repro.multigrid.kernels import (
    apply_operator,
    correct,
    interior,
    interpolate,
    jacobi_step,
    norm_residual,
    residual,
    restrict_full_weighting,
)


def poisson_exact_2d(n):
    """Manufactured solution u = sin(pi x) sin(pi y) on the unit square;
    f = A u for the discrete operator (so u is the exact discrete
    solution)."""
    h = 1.0 / (n + 1)
    coords = np.arange(n + 2) * h
    X, Y = np.meshgrid(coords, coords, indexing="ij")
    u = np.sin(np.pi * X) * np.sin(np.pi * Y)
    f = np.zeros_like(u)
    f[1:-1, 1:-1] = apply_operator(u, h)
    return u, f, h


class TestOperator:
    def test_laplacian_of_linear_is_zero(self):
        n = 16
        h = 1.0 / (n + 1)
        coords = np.arange(n + 2) * h
        X, Y = np.meshgrid(coords, coords, indexing="ij")
        u = 3.0 * X + 2.0 * Y + 1.0
        a = apply_operator(u, h)
        assert np.allclose(a, 0.0, atol=1e-9)

    def test_quadratic(self):
        n = 16
        h = 1.0 / (n + 1)
        coords = np.arange(n + 2) * h
        X, Y = np.meshgrid(coords, coords, indexing="ij")
        u = X * X
        a = apply_operator(u, h)  # A = -laplace -> -2
        assert np.allclose(a, -2.0, atol=1e-8)

    def test_3d_operator(self):
        n = 8
        h = 1.0 / (n + 1)
        c = np.arange(n + 2) * h
        X, Y, Z = np.meshgrid(c, c, c, indexing="ij")
        u = X * X + Y * Y + Z * Z
        assert np.allclose(apply_operator(u, h), -6.0, atol=1e-7)


class TestJacobi:
    def test_fixed_point_is_solution(self):
        u, f, h = poisson_exact_2d(16)
        stepped = jacobi_step(u, f, h)
        assert np.allclose(stepped, u, atol=1e-12)

    def test_boundary_preserved(self, rng):
        n = 8
        u = rng.standard_normal((n + 2, n + 2))
        f = rng.standard_normal((n + 2, n + 2))
        out = jacobi_step(u, f, 0.1)
        assert np.array_equal(out[0], u[0])
        assert np.array_equal(out[-1], u[-1])
        assert np.array_equal(out[:, 0], u[:, 0])

    def test_error_decreases(self, rng):
        u, f, h = poisson_exact_2d(16)
        guess = u + 0.0
        guess[1:-1, 1:-1] += rng.standard_normal((16, 16))
        for _ in range(20):
            guess = jacobi_step(guess, f, h)
        assert np.abs(guess - u).max() < np.abs(
            guess * 0 + 1.0
        ).max()  # bounded
        assert norm_residual(guess, f, h) < norm_residual(
            u + (guess - u) * 4, f, h
        )


class TestResidual:
    def test_zero_at_solution(self):
        u, f, h = poisson_exact_2d(16)
        r = residual(u, f, h)
        assert np.abs(r).max() < 1e-10

    def test_shape_interior_only(self, rng):
        n = 8
        u = rng.standard_normal((n + 2, n + 2))
        f = rng.standard_normal((n + 2, n + 2))
        assert residual(u, f, 0.1).shape == (n, n)


class TestTransfer:
    def test_restrict_constant(self):
        r = np.ones((8, 8))
        rc = restrict_full_weighting(r)
        assert rc.shape == (4, 4)
        # interior coarse points average to 1; edge points see zero
        # padding outside the fine interior
        assert np.allclose(rc[1:-1, 1:-1], 1.0)

    def test_restrict_odd_rejected(self):
        with pytest.raises(ValueError):
            restrict_full_weighting(np.ones((7, 7)))

    def test_restrict_weights_sum(self, rng):
        r = rng.standard_normal((16, 16))
        rc = restrict_full_weighting(r)
        # spot-check one interior coarse point against the 9-point rule
        q = (3, 5)
        fy, fx = 2 * (q[0] + 1), 2 * (q[1] + 1)  # fine point index
        window = r[fy - 2 : fy + 1, fx - 2 : fx + 1]
        w = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]]) / 16.0
        assert np.isclose(rc[q], (window * w).sum())

    def test_interp_even_points_copy(self, rng):
        nc = 4
        e = rng.standard_normal((nc, nc))
        fine = interpolate(e, 2 * nc)
        # fine point 2q (array index 2q-1) copies coarse q
        for qy in range(1, nc + 1):
            for qx in range(1, nc + 1):
                assert fine[2 * qy - 1, 2 * qx - 1] == e[qy - 1, qx - 1]

    def test_interp_odd_points_average(self, rng):
        nc = 4
        e = rng.standard_normal((nc, nc))
        fine = interpolate(e, 2 * nc)
        # fine x = 2q+1 along one dim averages neighbours
        assert np.isclose(
            fine[2 * 2 - 1, 2 * 2], 0.5 * (e[1, 1] + e[1, 2])
        )

    def test_interp_shape_check(self):
        with pytest.raises(ValueError):
            interpolate(np.ones((4, 4)), 10)

    def test_interp_restrict_3d_roundtrip_smooth(self):
        """Restriction after interpolation roughly preserves a smooth
        coarse function (transfer operators are consistent)."""
        nc = 8
        h = 1.0 / (nc + 1)
        c = (np.arange(nc) + 1) * h
        X, Y, Z = np.meshgrid(c, c, c, indexing="ij")
        e = np.sin(np.pi * X) * np.sin(np.pi * Y) * np.sin(np.pi * Z)
        fine = interpolate(e, 2 * nc)
        back = restrict_full_weighting(fine)
        interior_err = np.abs(back[1:-1, 1:-1, 1:-1] - e[1:-1, 1:-1, 1:-1])
        assert interior_err.max() < 0.05


class TestCorrect:
    def test_interior_added_boundary_kept(self, rng):
        n = 6
        v = rng.standard_normal((n + 2, n + 2))
        e = rng.standard_normal((n, n))
        out = correct(v, e)
        assert np.array_equal(out[1:-1, 1:-1], v[1:-1, 1:-1] + e)
        assert np.array_equal(out[0], v[0])
