"""Tests for the reference multigrid solver (convergence behaviour)."""

import numpy as np
import pytest

from repro.multigrid.kernels import apply_operator, norm_residual
from repro.multigrid.reference import (
    MultigridOptions,
    reference_cycle,
    solve,
)
from tests.conftest import make_rhs


class TestOptionsValidation:
    def test_bad_cycle(self):
        with pytest.raises(ValueError):
            MultigridOptions(cycle="X")

    def test_bad_levels(self):
        with pytest.raises(ValueError):
            MultigridOptions(levels=1)

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            MultigridOptions(n1=-1)

    def test_label(self):
        assert MultigridOptions(n1=10, n2=0, n3=0).smoothing_label() == (
            "10-0-0"
        )


class TestSolve:
    def test_v_cycle_converges_2d(self, rng):
        f = make_rhs(rng, 2, 64)
        opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=5)
        res = solve(f, opts, cycles=8)
        assert res.residual_norms[-1] < 1e-2 * res.residual_norms[0]
        assert all(fac < 0.75 for fac in res.convergence_factors())

    def test_w_beats_v_per_cycle(self, rng):
        f = make_rhs(rng, 2, 64)
        v_opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=5)
        w_opts = MultigridOptions(cycle="W", n1=2, n2=2, n3=2, levels=5)
        rv = solve(f, v_opts, cycles=5)
        rw = solve(f, w_opts, cycles=5)
        assert rw.residual_norms[-1] <= rv.residual_norms[-1]

    def test_3d_convergence(self, rng):
        f = make_rhs(rng, 3, 16)
        opts = MultigridOptions(cycle="V", n1=3, n2=3, n3=3, levels=3)
        res = solve(f, opts, cycles=6)
        factors = res.convergence_factors()
        assert res.residual_norms[-1] < 1e-3 * res.residual_norms[0]
        assert all(fac < 1.0 for fac in factors)

    def test_discrete_solution_recovered(self):
        """Solve A u = f with f manufactured from a known u; multigrid
        must converge to that exact discrete solution."""
        n = 32
        h = 1.0 / (n + 1)
        coords = np.arange(n + 2) * h
        X, Y = np.meshgrid(coords, coords, indexing="ij")
        u_exact = np.sin(np.pi * X) * np.sin(np.pi * Y)
        f = np.zeros_like(u_exact)
        f[1:-1, 1:-1] = apply_operator(u_exact, h)
        opts = MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=4)
        res = solve(f, opts, cycles=20)
        assert np.abs(res.u - u_exact).max() < 1e-10

    def test_tolerance_stops_early(self, rng):
        f = make_rhs(rng, 2, 32)
        opts = MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=4)
        res = solve(f, opts, cycles=50, tol=1e-8)
        assert res.cycles < 50

    def test_size_validation(self, rng):
        f = make_rhs(rng, 2, 30)  # 30 not divisible by 2**4
        opts = MultigridOptions(levels=5)
        with pytest.raises(ValueError):
            solve(f, opts, cycles=1)

    def test_initial_guess_used(self, rng):
        f = make_rhs(rng, 2, 32)
        opts = MultigridOptions(levels=4)
        u0 = np.zeros_like(f)
        u0[1:-1, 1:-1] = 5.0
        res = solve(f, opts, cycles=1, u0=u0)
        assert res.residual_norms[0] == norm_residual(u0, f, 1.0 / 33)


class TestCycleStructure:
    def test_cycle_preserves_boundary(self, rng):
        n = 16
        f = make_rhs(rng, 2, n)
        v = np.zeros((n + 2, n + 2))
        v[0, :] = 3.0  # non-homogeneous boundary data
        out = reference_cycle(
            v, f, 1.0 / (n + 1), MultigridOptions(levels=3)
        )
        assert np.array_equal(out[0, :], v[0, :])

    def test_smoothing_only_when_single_weighted(self, rng):
        """n1=k, coarse correction of zero: cycle with n2=n3=0 and a
        zero rhs restriction path must equal k plain smoothing steps at
        the finest level plus the coarse-level correction path."""
        from repro.multigrid.kernels import jacobi_step

        n = 16
        f = make_rhs(rng, 2, n)
        v = np.zeros((n + 2, n + 2))
        opts = MultigridOptions(cycle="V", n1=3, n2=0, n3=0, levels=2)
        out = reference_cycle(v, f, 1.0 / (n + 1), opts)
        manual = v
        for _ in range(3):
            manual = jacobi_step(manual, f, 1.0 / (n + 1))
        # coarse level contributes zero (no coarse smoothing)
        assert np.array_equal(out, manual)
