"""CycleSpec: the per-level cycle form and its flat-options parity.

The PR-10 contract: ``CycleSpec.from_options(opts)`` builds the *same*
stage DAG and the *same* iterate as the flat ``MultigridOptions`` it
came from, and arbitrary heterogeneous specs lower through the
existing DSL so every execution tier picks them up unchanged —
fuzz-asserted across tiers below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import discover_compiler
from repro.backend.registry import TIERS
from repro.cache import spec_fingerprint
from repro.compiler import compile_pipeline
from repro.multigrid import (
    CycleSpec,
    LevelSpec,
    MultigridOptions,
    as_cycle_spec,
    build_poisson_cycle,
    solve,
)
from repro.variants import polymg_opt_plus

from ..conftest import make_rhs

HAVE_CC = discover_compiler() is not None
TILES = {2: (8, 16), 3: (4, 8, 8)}


def _het_spec() -> CycleSpec:
    """A cycle no flat options tuple can express: per-level smoothing,
    weights, and a mixed V/W branching schedule."""
    return CycleSpec(
        (
            LevelSpec(pre=6, post=0, omega=0.9),
            LevelSpec(pre=1, post=2, omega=1.0),
            LevelSpec(pre=2, post=1, omega=0.85, branch=2),
            LevelSpec(pre=1, post=1, omega=0.8),
        )
    )


class TestNormalization:
    def test_as_cycle_spec_is_identity_on_specs(self):
        spec = _het_spec()
        assert as_cycle_spec(spec) is spec

    def test_from_options_shape(self):
        opts = MultigridOptions(cycle="W", n1=3, n2=5, n3=1, levels=4)
        spec = CycleSpec.from_options(opts)
        assert spec.levels == 4
        assert spec.level(0) == LevelSpec(5, 0, 0.8, 1)
        # W convention: the level directly above the coarsest visits
        # it once; all higher levels branch twice
        assert spec.level(1).branch == 1
        assert spec.level(2).branch == 2
        assert spec.level(3).branch == 2

    def test_dead_genes_do_not_split_fingerprints(self):
        a = CycleSpec(
            (LevelSpec(4, 0, 0.8, 1), LevelSpec(2, 2, 0.8, 1))
        )
        # coarsest post/branch and level-1 branch are behaviourally
        # inert; canonicalization maps them onto the same fingerprint
        b = CycleSpec(
            (LevelSpec(4, 7, 0.8, 3), LevelSpec(2, 2, 0.8, 2))
        )
        assert a.fingerprint() == b.fingerprint()
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleSpec((LevelSpec(4),))  # one level is not a hierarchy
        with pytest.raises(ValueError):
            LevelSpec(pre=-1)
        with pytest.raises(ValueError):
            LevelSpec(branch=0)
        with pytest.raises(ValueError):
            LevelSpec(omega=float("nan"))

    def test_dict_roundtrip(self):
        spec = _het_spec()
        again = CycleSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_smoothing_steps_counts_visit_multiplicity(self):
        v = CycleSpec.from_options(
            MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=3)
        )
        w = CycleSpec.from_options(
            MultigridOptions(cycle="W", n1=1, n2=1, n3=1, levels=3)
        )
        assert v.smoothing_steps() == 1 + 2 + 2
        # the W cycle visits level 1 twice (branch=2 at level 2)
        assert w.smoothing_steps() == 2 * 1 + 2 * 2 + 2

    def test_remediation_hooks_match_flat_form(self):
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        spec = CycleSpec.from_options(opts)
        assert spec.bumped(2) == CycleSpec.from_options(opts.bumped(2))
        assert spec.widened() == CycleSpec.from_options(opts.widened())
        # already-maximal widening declines on both forms
        assert CycleSpec.from_options(opts.widened()).widened() is None
        assert opts.widened().widened() is None


class TestFlatParity:
    @pytest.mark.parametrize("cycle", ["V", "W"])
    def test_dag_fingerprints_match(self, cycle):
        opts = MultigridOptions(cycle=cycle, levels=3)
        a = build_poisson_cycle(2, 16, opts)
        b = build_poisson_cycle(2, 16, CycleSpec.from_options(opts))
        assert spec_fingerprint([a.output]) == spec_fingerprint(
            [b.output]
        )

    @pytest.mark.parametrize("cycle", ["V", "W"])
    def test_reference_solver_bitwise(self, cycle, rng):
        opts = MultigridOptions(cycle=cycle, levels=3)
        f = make_rhs(rng, 2, 16)
        a = solve(f, opts, cycles=3)
        b = solve(f, CycleSpec.from_options(opts), cycles=3)
        assert np.array_equal(a.u, b.u)
        assert a.residual_norms == b.residual_norms


class TestHeterogeneousLowering:
    def test_compiled_matches_reference(self, rng):
        spec = _het_spec()
        pipe = build_poisson_cycle(2, 32, spec)
        f = make_rhs(rng, 2, 32)
        u0 = np.zeros_like(f)
        cfg = polymg_opt_plus(tile_sizes=dict(TILES))
        compiled = pipe.compile(cfg)
        got = compiled.execute(pipe.make_inputs(u0, f))[
            pipe.output.name
        ]
        want = solve(f, spec, cycles=1).u
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-11)

    def test_pipeline_name_carries_spec_hash(self):
        spec = _het_spec()
        pipe = build_poisson_cycle(2, 32, spec)
        assert spec.short_hash() in pipe.name


def _random_spec(rng: np.random.Generator, max_levels: int) -> CycleSpec:
    levels = int(rng.integers(2, max_levels + 1))
    omegas = (0.7, 0.8, 0.9, 1.0)
    specs = [
        LevelSpec(
            pre=int(rng.integers(1, 5)),
            post=0,
            omega=float(rng.choice(omegas)),
        )
    ]
    for _ in range(levels - 1):
        specs.append(
            LevelSpec(
                pre=int(rng.integers(0, 4)),
                post=int(rng.integers(0, 4)),
                omega=float(rng.choice(omegas)),
                branch=int(rng.choice((1, 1, 2))),
            )
        )
    return CycleSpec(tuple(specs))


class TestCrossTierFuzz:
    """Random CycleSpecs execute identically on every registered tier
    (capability-dispatched, like the PR-7 parity net): plan-walking
    tiers bitwise against the interpreter, JIT tiers within tight
    tolerances."""

    @pytest.mark.parametrize("tier_name", TIERS.names())
    @pytest.mark.parametrize("ndim,n", [(2, 16), (3, 8)])
    def test_fuzz_cyclespec_parity(self, tier_name, ndim, n):
        tier = TIERS.resolve(tier_name)
        if not tier.config_selectable:
            pytest.skip("tier is not selectable as a config backend")
        if tier.jit_build and not HAVE_CC:
            pytest.skip("no C toolchain on PATH (cc/gcc/clang)")
        rng = np.random.default_rng(0xC1C7E)
        for trial in range(3):
            spec = _random_spec(rng, max_levels=3)
            pipe = build_poisson_cycle(ndim, n, spec)
            f = make_rhs(rng, ndim, n)
            inputs = pipe.make_inputs(np.zeros_like(f), f)
            ref_cfg = polymg_opt_plus(
                tile_sizes=dict(TILES), backend="interpreted"
            )
            reference = compile_pipeline(
                pipe.output,
                pipe.params,
                ref_cfg,
                name=pipe.name,
                cache=False,
            )
            expected = reference.execute(dict(inputs))[
                pipe.output.name
            ]
            cfg = polymg_opt_plus(
                tile_sizes=dict(TILES), backend=tier_name
            )
            compiled = compile_pipeline(
                pipe.output,
                pipe.params,
                cfg,
                name=pipe.name,
                cache=False,
            )
            got = compiled.execute(dict(inputs))[pipe.output.name]
            if tier.jit_build:
                np.testing.assert_allclose(
                    got, expected, rtol=1e-9, atol=1e-11
                )
            else:
                assert np.array_equal(got, expected), (
                    f"{tier_name} diverged from the interpreter on "
                    f"fuzz trial {trial}: {spec.label()}"
                )
