"""Residual-divergence sentinels: an unstable smoother must fail loudly
under guards and is demonstrably silent without them."""

import pytest

from repro import MultigridOptions, build_poisson_cycle, solve_compiled
from repro.backend.guards import ResidualMonitor
from repro.errors import NumericalDivergenceError
from repro.variants import polymg_opt_plus
from tests.conftest import make_rhs

N = 16


def unstable_pipe():
    # weighted Jacobi requires 0 < omega < 1 for the high-frequency
    # modes; omega=1.9 amplifies them by ~|1 - 2*omega| = 2.8 per step
    opts = MultigridOptions(
        cycle="V", n1=2, n2=2, n3=2, levels=3, omega=1.9
    )
    return build_poisson_cycle(2, N, opts)


def stable_pipe():
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    return build_poisson_cycle(2, N, opts)


class TestDivergenceDetection:
    def test_unstable_smoother_raises_under_guards(self, rng):
        f = make_rhs(rng, 2, N)
        with pytest.raises(NumericalDivergenceError) as exc:
            solve_compiled(
                unstable_pipe(),
                f,
                config=polymg_opt_plus(),
                cycles=10,
                guards=True,
            )
        assert "diverged" in str(exc.value)
        assert exc.value.context["cycle"] < 10

    def test_unstable_smoother_silently_diverges_without_guards(
        self, rng
    ):
        f = make_rhs(rng, 2, N)
        result = solve_compiled(
            unstable_pipe(), f, config=polymg_opt_plus(), cycles=6
        )
        norms = result.residual_norms
        assert norms[-1] > 100 * norms[0]  # garbage, and no exception

    def test_stable_smoother_passes_under_guards(self, rng):
        f = make_rhs(rng, 2, N)
        result = solve_compiled(
            stable_pipe(),
            f,
            config=polymg_opt_plus(),
            cycles=6,
            guards=True,
        )
        norms = result.residual_norms
        assert norms[-1] < norms[0]


class TestResidualMonitor:
    def test_flags_growth(self):
        monitor = ResidualMonitor(growth_factor=10.0, pipeline="p")
        monitor.observe(1.0)
        monitor.observe(0.5)
        with pytest.raises(NumericalDivergenceError):
            monitor.observe(5.1)  # > 10 * best (0.5)

    def test_flags_nonfinite(self):
        monitor = ResidualMonitor()
        monitor.observe(1.0)
        with pytest.raises(NumericalDivergenceError):
            monitor.observe(float("nan"))

    def test_tolerates_convergence_and_stagnation(self):
        monitor = ResidualMonitor(growth_factor=100.0)
        for norm in [1.0, 0.3, 0.1, 0.09, 0.11, 0.1]:
            monitor.observe(norm)

    def test_rejects_trivial_growth_factor(self):
        with pytest.raises(ValueError):
            ResidualMonitor(growth_factor=1.0)

    def test_history_is_a_bounded_ring_buffer(self):
        """Long-running service solves must not grow memory without
        bound: history keeps only the most recent ``history_limit``
        norms while the observation count keeps counting."""
        monitor = ResidualMonitor(history_limit=8)
        for i in range(100):
            monitor.observe(1.0 / (i + 1))
        assert len(monitor.history) == 8
        assert monitor.observed == 100
        assert list(monitor.history) == [
            1.0 / (i + 1) for i in range(92, 100)
        ]

    def test_divergence_judged_against_best_outside_the_window(self):
        """The running best norm is retained separately, so a blow-up
        is still flagged after the best norm has left the window."""
        monitor = ResidualMonitor(growth_factor=10.0, history_limit=4)
        monitor.observe(0.01)  # the best — about to scroll out
        for _ in range(10):
            monitor.observe(0.05)
        assert 0.01 not in monitor.history
        assert monitor.best == 0.01
        with pytest.raises(NumericalDivergenceError) as exc:
            monitor.observe(0.2)  # > 10 * 0.01, but < 10 * min(window)
        assert exc.value.context["best"] == 0.01

    def test_cycle_context_survives_the_ring_buffer(self):
        monitor = ResidualMonitor(history_limit=4)
        for i in range(20):
            monitor.observe(1.0)
        with pytest.raises(NumericalDivergenceError) as exc:
            monitor.observe(float("inf"))
        assert exc.value.context["cycle"] == 20

    def test_reduction_factor(self):
        monitor = ResidualMonitor()
        assert monitor.reduction_factor() is None
        monitor.observe(1.0)
        assert monitor.reduction_factor() is None
        monitor.observe(0.25)
        assert monitor.reduction_factor() == 0.25

    def test_rejects_degenerate_history_limit(self):
        with pytest.raises(ValueError):
            ResidualMonitor(history_limit=0)
