"""Tests for parametric and concrete intervals."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import aff
from repro.ir.interval import ConcreteInterval, Interval


def intervals():
    return st.builds(
        ConcreteInterval, st.integers(-30, 30), st.integers(-30, 30)
    )


class TestParametricInterval:
    def test_bind(self):
        iv = Interval(1, aff("N") + 1)
        c = iv.bind({"N": 8})
        assert (c.lb, c.ub) == (1, 9)

    def test_size_affine(self):
        iv = Interval(0, aff("N") + 1)
        assert iv.size().int_value({"N": 8}) == 10

    def test_shift_grow(self):
        iv = Interval(1, aff("N")).shift(2).grow(1, 3)
        c = iv.bind({"N": 4})
        assert (c.lb, c.ub) == (2, 9)

    def test_eq_hash(self):
        assert Interval(0, aff("N")) == Interval(0, aff("N"))
        assert hash(Interval(0, 3)) == hash(Interval(0, 3))


class TestConcreteInterval:
    def test_empty(self):
        assert ConcreteInterval(3, 2).is_empty()
        assert ConcreteInterval(3, 2).size() == 0

    def test_intersect(self):
        a = ConcreteInterval(0, 10).intersect(ConcreteInterval(5, 20))
        assert (a.lb, a.ub) == (5, 10)

    def test_union_hull(self):
        a = ConcreteInterval(0, 2).union_hull(ConcreteInterval(8, 9))
        assert (a.lb, a.ub) == (0, 9)

    def test_union_hull_empty(self):
        e = ConcreteInterval(5, 1)
        a = ConcreteInterval(0, 2)
        assert e.union_hull(a) == a
        assert a.union_hull(e) == a

    def test_covers_contains(self):
        a = ConcreteInterval(0, 10)
        assert a.covers(ConcreteInterval(3, 5))
        assert not a.covers(ConcreteInterval(3, 11))
        assert a.contains(0) and not a.contains(11)

    def test_subtract_middle(self):
        pieces = ConcreteInterval(0, 10).subtract(ConcreteInterval(3, 5))
        assert [(p.lb, p.ub) for p in pieces] == [(0, 2), (6, 10)]

    def test_subtract_disjoint(self):
        pieces = ConcreteInterval(0, 2).subtract(ConcreteInterval(5, 9))
        assert pieces == [ConcreteInterval(0, 2)]

    def test_subtract_covering(self):
        assert ConcreteInterval(3, 5).subtract(ConcreteInterval(0, 10)) == []

    def test_iteration(self):
        assert list(ConcreteInterval(2, 4)) == [2, 3, 4]


class TestConcreteProperties:
    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals())
    def test_subtract_partition(self, a, b):
        """a = (a ∩ b) ∪ (a \\ b), disjointly."""
        inter = a.intersect(b)
        pieces = a.subtract(b)
        total = inter.size() + sum(p.size() for p in pieces)
        assert total == a.size()
        values = set(inter) if not inter.is_empty() else set()
        for p in pieces:
            chunk = set(p)
            assert not (chunk & values)
            values |= chunk
        assert values == set(a)

    @given(intervals(), intervals())
    def test_hull_covers_both(self, a, b):
        h = a.union_hull(b)
        assert h.covers(a) and h.covers(b)
