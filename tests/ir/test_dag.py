"""Tests for pipeline DAG construction."""

import pytest

from repro.ir.dag import PipelineDAG, topological_order
from repro.lang.function import Function, Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.types import Double, Int
from repro.multigrid import MultigridOptions, build_poisson_cycle


@pytest.fixture
def chain():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    a = Function(([y, x], [ext, ext]), Double, "a")
    a.defn = [g(y, x) * 2]
    b = Function(([y, x], [ext, ext]), Double, "b")
    b.defn = [a(y, x) + 1]
    c = Function(([y, x], [ext, ext]), Double, "c")
    c.defn = [a(y, x) + b(y, x)]
    return g, a, b, c


class TestTopology:
    def test_order_and_consumers(self, chain):
        g, a, b, c = chain
        order, consumers = topological_order([c])
        names = [f.name for f in order]
        assert names.index("a") < names.index("b") < names.index("c")
        assert consumers[a] == [b, c] or consumers[a] == [c, b]
        assert consumers[b] == [c]

    def test_dag_queries(self, chain):
        g, a, b, c = chain
        dag = PipelineDAG([c], params={"N": 4}, name="chain")
        assert dag.stage_count() == 3
        assert dag.inputs == [g]
        assert dag.is_output(c) and not dag.is_output(a)
        assert dag.producers_of(c) == [a, b]
        assert set(dag.consumers_of(a)) == {b, c}
        assert dag.access(b, a).max_halo() == 0

    def test_unreached_stage_excluded(self, chain):
        g, a, b, c = chain
        dag = PipelineDAG([b], params={"N": 4})
        assert dag.stage_count() == 2  # a, b — c not reachable

    def test_missing_defn_rejected(self, chain):
        g, a, b, c = chain
        n = Parameter(Int, "M")
        y, x = Variable("y"), Variable("x")
        ext = Interval(Int, 0, n + 1)
        hollow = Function(([y, x], [ext, ext]), Double, "hollow")
        with pytest.raises(ValueError):
            PipelineDAG([hollow], params={"M": 2})

    def test_networkx_export(self, chain):
        g, a, b, c = chain
        dag = PipelineDAG([c], params={"N": 4})
        nxg = dag.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.has_edge("a", "c")
        import networkx as nx

        assert nx.is_directed_acyclic_graph(nxg)

    def test_summary_text(self, chain):
        g, a, b, c = chain
        dag = PipelineDAG([c], params={"N": 4})
        text = dag.summary()
        assert "3 stages" in text and "c [pointwise]" in text


class TestPaperStageCounts:
    """Table 3 stage counts (# DAG nodes as specified, 4 levels)."""

    @pytest.mark.parametrize(
        "cycle,smoothing,expected",
        [
            ("V", (4, 4, 4), 40),
            ("V", (10, 0, 0), 42),
            ("W", (4, 4, 4), 100),
            ("W", (10, 0, 0), 98),
        ],
    )
    def test_specified_stage_counts(self, cycle, smoothing, expected):
        opts = MultigridOptions(
            cycle=cycle,
            n1=smoothing[0],
            n2=smoothing[1],
            n3=smoothing[2],
            levels=4,
        )
        pipe = build_poisson_cycle(2, 32, opts)
        assert pipe.stage_count_ == expected

    def test_dag_prunes_dead_coarse_solve(self):
        # with n2 = 0 the coarsest defect/restrict pair is dead code
        opts = MultigridOptions(cycle="V", n1=10, n2=0, n3=0, levels=4)
        pipe = build_poisson_cycle(2, 32, opts)
        dag = PipelineDAG([pipe.output], params=pipe.params)
        assert dag.stage_count() == 40  # 42 specified - dead pair
