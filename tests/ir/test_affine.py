"""Unit and property tests for parametric affine arithmetic."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import Affine, aff, amax, amin


def affines(params=("N", "M")):
    coeff = st.fractions(
        min_value=-8, max_value=8, max_denominator=4
    )
    return st.builds(
        Affine,
        coeff,
        st.dictionaries(st.sampled_from(params), coeff, max_size=2),
    )


class TestConstruction:
    def test_constant(self):
        a = Affine(3)
        assert a.is_constant()
        assert a.constant_value() == 3

    def test_param(self):
        a = aff("N")
        assert not a.is_constant()
        assert a.coeff("N") == 1
        assert a.params == ("N",)

    def test_zero_coeffs_dropped(self):
        a = Affine(1, {"N": 0})
        assert a.is_constant()

    def test_wrap_fraction(self):
        assert aff(Fraction(1, 2)).constant_value() == Fraction(1, 2)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            Affine(1.5)


class TestAlgebra:
    def test_add_params(self):
        a = aff("N") + 2
        b = a + aff("N")
        assert b.coeff("N") == 2
        assert b.const == 2

    def test_sub(self):
        a = (aff("N") + 5) - (aff("N") + 3)
        assert a == Affine(2)

    def test_rsub(self):
        a = 10 - aff("N")
        assert a.coeff("N") == -1
        assert a.const == 10

    def test_scale(self):
        a = aff("N") * Fraction(1, 2)
        assert a.coeff("N") == Fraction(1, 2)

    def test_div(self):
        assert (aff("N") / 2).coeff("N") == Fraction(1, 2)
        with pytest.raises(ZeroDivisionError):
            aff("N") / 0

    def test_neg(self):
        assert (-(aff("N") + 1)).const == -1


class TestEvaluation:
    def test_subs_partial(self):
        a = aff("N") + aff("M") + 1
        b = a.subs({"N": 4})
        assert b.coeff("M") == 1
        assert b.const == 5

    def test_value(self):
        assert (aff("N") * 2 + 1).int_value({"N": 3}) == 7

    def test_unbound_raises(self):
        with pytest.raises(ValueError):
            aff("N").value({})

    def test_non_integer_raises(self):
        with pytest.raises(ValueError):
            (aff("N") / 2).int_value({"N": 3})

    def test_floor_div(self):
        a = aff("N") + 1
        assert a.floor_div(2, {"N": 4}) == 2
        assert a.floor_div(2, {"N": 5}) == 3


class TestClassification:
    def test_same_shape(self):
        a = aff("N") + 2
        b = aff("N") - 1
        assert a.same_shape(b)
        assert a.diff_const(b) == 3

    def test_different_shape(self):
        a = aff("N")
        b = aff("N") * Fraction(1, 2)
        assert not a.same_shape(b)
        with pytest.raises(ValueError):
            a.diff_const(b)

    def test_amax_symbolic(self):
        a, b = aff("N") + 2, aff("N") + 5
        assert amax([a, b]) == b
        assert amin([a, b]) == a

    def test_amax_needs_bindings(self):
        with pytest.raises(ValueError):
            amax([aff("N"), aff("M")])
        assert amax([aff("N"), aff("M")], {"N": 1, "M": 2}) == aff("M")


class TestProperties:
    @given(affines(), affines())
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(affines(), affines(), affines())
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(affines())
    def test_neg_involution(self, a):
        assert -(-a) == a

    @given(affines(), st.integers(-5, 5))
    def test_scale_distributes(self, a, k):
        assert (a + a) * k == a * k + a * k

    @given(affines(), st.integers(1, 7), st.integers(1, 7))
    def test_eval_homomorphism(self, a, n, m):
        bindings = {"N": n, "M": m}
        assert (a + a).value(bindings) == 2 * a.value(bindings)

    @given(affines(), affines())
    def test_same_shape_iff_diff_constant(self, a, b):
        if a.same_shape(b):
            assert (a - b).is_constant()
        else:
            assert not (a - b).is_constant()

    @given(affines())
    def test_hash_consistent(self, a):
        b = Affine(a.const, a.coeffs)
        assert a == b and hash(a) == hash(b)
