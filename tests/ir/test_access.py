"""Tests for scaled affine access relations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.access import AccessDim, AccessRange, identity_access
from repro.ir.interval import ConcreteInterval


class TestAccessDim:
    def test_identity(self):
        a = AccessDim()
        assert a.is_identity()
        assert a.apply(7) == 7

    def test_stencil_offset(self):
        a = AccessDim(off=-1)
        assert a.image(ConcreteInterval(1, 4)) == ConcreteInterval(0, 3)

    def test_restrict_scaling(self):
        a = AccessDim(num=2, off=1)
        assert a.apply(3) == 7
        assert a.image(ConcreteInterval(1, 4)) == ConcreteInterval(3, 9)

    def test_interp_scaling_floor(self):
        a = AccessDim(num=1, den=2)
        assert a.apply(5) == 2
        assert a.apply(-1) == -1

    def test_reduction(self):
        a = AccessDim(num=4, den=2)
        assert (a.num, a.den) == (2, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            AccessDim(num=0)

    def test_to_range(self):
        r = AccessDim(off=3).to_range()
        assert (r.omin, r.omax) == (3, 3)


class TestAccessRange:
    def test_union(self):
        a = AccessRange(1, 1, -1, 0)
        b = AccessRange(1, 1, 0, 2)
        u = a.union(b)
        assert (u.omin, u.omax) == (-1, 2)
        assert u.halo() == 3

    def test_union_scaling_mismatch(self):
        with pytest.raises(ValueError):
            AccessRange(1, 1).union(AccessRange(2, 1))

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            AccessRange(1, 1, 2, 1)

    def test_image_stencil(self):
        r = AccessRange(1, 1, -1, 1)
        assert r.image(ConcreteInterval(1, 8)) == ConcreteInterval(0, 9)

    def test_image_restrict(self):
        # full weighting: fine = 2c + [-1, 1]
        r = AccessRange(2, 1, -1, 1)
        assert r.image(ConcreteInterval(1, 4)) == ConcreteInterval(1, 9)

    def test_image_interp(self):
        # interp footprint encoding from sampling.Interp
        r = AccessRange(1, 2, -1, 0)
        assert r.image(ConcreteInterval(1, 6)) == ConcreteInterval(0, 3)

    def test_image_empty(self):
        e = ConcreteInterval(3, 1)
        assert AccessRange().image(e).is_empty()

    def test_identity_access(self):
        assert len(identity_access(3)) == 3
        assert all(r.halo() == 0 for r in identity_access(3))


class TestImageProperties:
    ranges = st.builds(
        lambda num, den, o, w: AccessRange(num, den, o, o + w),
        st.sampled_from([1, 2]),
        st.sampled_from([1, 2]),
        st.integers(-3, 3),
        st.integers(0, 4),
    )
    ivals = st.builds(
        lambda a, n: ConcreteInterval(a, a + n),
        st.integers(-20, 20),
        st.integers(0, 25),
    )

    @given(ranges, ivals)
    def test_image_covers_pointwise(self, rng, iv):
        """The interval image contains every pointwise access."""
        img = rng.image(iv)
        for x in iv:
            for off in range(rng.omin, rng.omax + 1):
                p = (rng.num * x + off) // rng.den
                assert img.contains(p)

    @given(ranges, ivals, ivals)
    def test_image_monotone(self, rng, a, b):
        hull = a.union_hull(b)
        assert rng.image(hull).covers(rng.image(a))
        assert rng.image(hull).covers(rng.image(b))
