"""Tests for hyperrectangular domains and box subtraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import aff
from repro.ir.domain import Box, Domain, box_union_volume
from repro.ir.interval import ConcreteInterval, Interval


def boxes(ndim=2, lo=-8, hi=8):
    iv = st.builds(ConcreteInterval, st.integers(lo, hi), st.integers(lo, hi))
    return st.builds(Box, st.lists(iv, min_size=ndim, max_size=ndim))


class TestDomain:
    def test_bind(self):
        d = Domain([Interval(0, aff("N") + 1)] * 2)
        b = d.bind({"N": 4})
        assert b.shape() == (6, 6)

    def test_sizes(self):
        d = Domain([Interval(1, aff("N"))])
        assert d.sizes()[0].int_value({"N": 7}) == 7


class TestBox:
    def test_basics(self):
        b = Box.from_bounds([(0, 3), (1, 2)])
        assert b.ndim == 2
        assert b.volume() == 8
        assert b.shape() == (4, 2)
        assert b.lower() == (0, 1)
        assert b.upper() == (3, 2)

    def test_empty(self):
        assert Box.from_bounds([(2, 1), (0, 5)]).is_empty()
        assert Box.from_bounds([(2, 1), (0, 5)]).volume() == 0

    def test_intersect(self):
        a = Box.from_bounds([(0, 5), (0, 5)])
        b = Box.from_bounds([(3, 9), (2, 4)])
        assert a.intersect(b) == Box.from_bounds([(3, 5), (2, 4)])

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            Box.from_bounds([(0, 1)]).intersect(
                Box.from_bounds([(0, 1), (0, 1)])
            )

    def test_grow_shift(self):
        b = Box.from_bounds([(1, 2)]).grow([1], [2]).shift([10])
        assert b == Box.from_bounds([(10, 14)])

    def test_slices_default_origin(self):
        b = Box.from_bounds([(2, 4), (1, 1)])
        assert b.slices() == (slice(0, 3), slice(0, 1))
        assert b.slices((0, 0)) == (slice(2, 5), slice(1, 2))

    def test_points(self):
        b = Box.from_bounds([(0, 1), (5, 6)])
        assert list(b.points()) == [(0, 5), (0, 6), (1, 5), (1, 6)]

    def test_covers(self):
        outer = Box.from_bounds([(0, 9), (0, 9)])
        assert outer.covers(Box.from_bounds([(1, 2), (3, 3)]))
        assert not outer.covers(Box.from_bounds([(0, 10), (0, 3)]))
        assert outer.covers(Box.from_bounds([(5, 1), (0, 3)]))  # empty


class TestSubtraction:
    def test_hole_decomposition(self):
        outer = Box.from_bounds([(0, 9), (0, 9)])
        hole = Box.from_bounds([(3, 5), (4, 6)])
        pieces = outer.subtract(hole)
        assert sum(p.volume() for p in pieces) == 100 - 9
        # pairwise disjoint
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert a.intersect(b).is_empty()

    def test_disjoint(self):
        a = Box.from_bounds([(0, 1), (0, 1)])
        b = Box.from_bounds([(5, 6), (5, 6)])
        assert a.subtract(b) == [a]

    def test_covered(self):
        a = Box.from_bounds([(3, 4), (3, 4)])
        assert a.subtract(Box.from_bounds([(0, 9), (0, 9)])) == []

    @given(boxes(), boxes())
    def test_subtract_partition_property(self, a, b):
        inter = a.intersect(b)
        pieces = a.subtract(b)
        assert inter.volume() + sum(p.volume() for p in pieces) == a.volume()
        for i, p in enumerate(pieces):
            assert a.covers(p)
            assert p.intersect(b).is_empty()
            for q in pieces[i + 1 :]:
                assert p.intersect(q).is_empty()

    @given(boxes(1, -5, 5), st.lists(boxes(1, -5, 5), max_size=4))
    def test_subtract_all_disjoint_from_all(self, a, others):
        for piece in a.subtract_all(others):
            for o in others:
                assert piece.intersect(o).is_empty()

    @given(st.lists(boxes(2, -6, 6), min_size=1, max_size=5))
    def test_union_volume_vs_pointset(self, bs):
        points = set()
        for b in bs:
            if not b.is_empty():
                points |= set(b.points())
        assert box_union_volume(bs) == len(points)
