"""Tests for the diamond-tile schedule: coverage, disjointness, and
dependence validity — the properties that substitute for Pluto's
correctness guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.interval import ConcreteInterval
from repro.pluto.diamond import diamond_schedule, diamond_stats


def flatten(phases):
    for phase in phases:
        for tile in phase:
            yield tile


class TestScheduleStructure:
    def test_empty_for_zero_steps(self):
        assert diamond_schedule(0, ConcreteInterval(0, 9), 4) == []

    def test_width_validation(self):
        with pytest.raises(ValueError):
            diamond_schedule(2, ConcreteInterval(0, 9), 1)

    def test_phases_alternate(self):
        phases = diamond_schedule(4, ConcreteInterval(0, 31), 8)
        assert len(phases) % 2 == 0
        for i, phase in enumerate(phases):
            assert all(t.phase == i % 2 for t in phase)

    def test_slab_decomposition(self):
        stats = diamond_stats(10, ConcreteInterval(0, 63), 8)
        # slab height = width // 2 = 4 -> ceil(10/4) = 3 slabs
        assert stats.slabs == 3
        assert stats.barriers == 6

    def test_concurrency(self):
        stats = diamond_stats(3, ConcreteInterval(0, 255), 8)
        assert stats.max_concurrency >= 256 // 8


class TestCoverageProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(1, 12),
        st.integers(0, 5),
        st.integers(4, 80),
        st.integers(2, 16).map(lambda w: 2 * w),
    )
    def test_exactly_once_coverage(self, steps, lo, size, width):
        """Every (t, x) point is computed exactly once — diamond tiling
        has no redundant computation (unlike overlapped tiling)."""
        extent = ConcreteInterval(lo, lo + size - 1)
        phases = diamond_schedule(steps, extent, width)
        seen: dict[tuple[int, int], int] = {}
        for tile in flatten(phases):
            for t, iv in tile.steps():
                for x in iv:
                    seen[(t, x)] = seen.get((t, x), 0) + 1
        expected = {
            (t, x)
            for t in range(1, steps + 1)
            for x in extent
        }
        assert set(seen) == expected
        assert all(v == 1 for v in seen.values())

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 8),
        st.integers(4, 60),
        st.integers(2, 12).map(lambda w: 2 * w),
    )
    def test_dependences_respected(self, steps, size, width):
        """When a point (t, x) is computed, (t-1, x-1..x+1) must already
        have been computed (or lie outside the domain)."""
        extent = ConcreteInterval(0, size - 1)
        phases = diamond_schedule(steps, extent, width)
        done: set[tuple[int, int]] = set()
        for phase in phases:
            # all tiles of a phase execute concurrently: their reads
            # must be satisfied by *previous* phases or by earlier steps
            # of the same tile
            phase_writes: set[tuple[int, int]] = set()
            for tile in phase:
                local: set[tuple[int, int]] = set()
                for t, iv in tile.steps():
                    for x in iv:
                        if t > 1:
                            for dx in (-1, 0, 1):
                                p = (t - 1, x + dx)
                                if extent.contains(x + dx):
                                    assert p in done or p in local, (
                                        f"point {(t, x)} reads {p} "
                                        "before it is computed"
                                    )
                        local.add((t, x))
                phase_writes |= local
            done |= phase_writes

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 6), st.integers(8, 60))
    def test_intra_phase_tiles_disjoint(self, steps, size):
        extent = ConcreteInterval(0, size - 1)
        phases = diamond_schedule(steps, extent, 8)
        for phase in phases:
            per_step: dict[int, set[int]] = {}
            for tile in phase:
                for t, iv in tile.steps():
                    pts = set(iv)
                    assert not (pts & per_step.get(t, set()))
                    per_step.setdefault(t, set()).update(pts)

    def test_stats_points(self):
        extent = ConcreteInterval(0, 99)
        stats = diamond_stats(5, extent, 10)
        assert stats.points == 5 * 100
