"""Compile-cache correctness.

Covers the acceptance criteria of the content-addressed cache: a second
compile with an identical (spec, params, config) fingerprint is a hit
whose results are bit-identical to a cold compile; changing *any*
component of the key busts it; fault-injected (mutated-in-place)
artifacts are never served."""

from dataclasses import fields

import numpy as np
import pytest

from repro import build_poisson_cycle
from repro.backend.executor import CompiledPipeline
from repro.backend.guards import GuardedPipeline
from repro.cache import (
    CompileCache,
    compile_cache,
    compile_fingerprint,
    spec_fingerprint,
)
from repro.backend.registry import INTERPRETED, PLANNED
from repro.config import (
    AFFINITY_MODES,
    ISOLATION_MODES,
    NATIVE_FAULTS,
    PolyMgConfig,
)
from repro.errors import StorageSoundnessError
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_opt_plus
from repro.verify import verify_compiled
from repro.verify.faults import inject_nan_poison, inject_slot_swap

from tests.conftest import make_rhs

N = 32
CFG = polymg_opt_plus(tile_sizes={2: (8, 16)})
OPTS = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)


@pytest.fixture
def pipe():
    return build_poisson_cycle(2, N, OPTS)


@pytest.fixture(autouse=True)
def fresh_cache():
    # entries are dropped so every test starts cold; the process-wide
    # stats object survives, so tests assert on deltas
    compile_cache().clear()
    yield
    compile_cache().clear()


class TestCacheHit:
    def test_second_identical_compile_is_a_hit(self, pipe):
        """The acceptance criterion: same fingerprint => cache hit."""
        stats = compile_cache().stats
        h0, m0, s0 = stats.hits, stats.misses, stats.stores

        first = pipe.compile(CFG)
        assert (stats.hits, stats.misses) == (h0, m0 + 1)
        assert stats.stores == s0 + 1

        second = pipe.compile(CFG)
        assert stats.hits == h0 + 1
        assert stats.stores == s0 + 1  # nothing recompiled

        # a hit is a fresh executor over the *shared* artifacts
        assert second is not first
        assert second.dag is first.dag
        assert second.grouping is first.grouping
        assert second.schedule is first.schedule
        assert second.storage is first.storage
        assert second.stats is not first.stats

        # one report per cold compile, with the hit counted on it
        assert second.report is first.report
        assert first.report.cache_hits == 1

    def test_independently_built_specs_share_an_entry(self, pipe):
        stats = compile_cache().stats
        h0 = stats.hits
        rebuilt = build_poisson_cycle(2, N, OPTS)
        assert spec_fingerprint([pipe.output]) == spec_fingerprint(
            [rebuilt.output]
        )
        first = pipe.compile(CFG)
        second = rebuilt.compile(CFG)
        assert stats.hits == h0 + 1
        assert second.grouping is first.grouping

    def test_hit_is_bit_identical_to_cold_compile(self, pipe, rng):
        f = make_rhs(rng, 2, N)
        cold = pipe.compile(CFG, cache=False)
        pipe.compile(CFG)  # populate
        hit = pipe.compile(CFG)
        assert hit.report.cache_hits >= 1
        out_cold = cold.execute(pipe.make_inputs(np.zeros_like(f), f))
        out_hit = hit.execute(pipe.make_inputs(np.zeros_like(f), f))
        assert np.array_equal(
            out_cold[pipe.output.name], out_hit[pipe.output.name]
        )

    def test_cache_false_leaves_cache_untouched(self, pipe):
        stats = compile_cache().stats
        before = stats.to_dict()
        compiled = pipe.compile(CFG, cache=False)
        assert compiled.report is not None
        assert stats.to_dict() == before

    def test_env_var_disables_cache(self, pipe, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        stats = compile_cache().stats
        before = stats.to_dict()
        first = pipe.compile(CFG)
        second = pipe.compile(CFG)
        assert stats.to_dict() == before
        assert second.grouping is not first.grouping

    def test_snapshot_compiles_bypass_the_cache(self, pipe):
        stats = compile_cache().stats
        before = stats.to_dict()
        first = pipe.compile(CFG, snapshot_ir=True)
        second = pipe.compile(CFG, snapshot_ir=True)
        assert stats.to_dict() == before
        assert second.report is not first.report


class TestKeying:
    def test_every_config_field_busts_the_key(self, pipe):
        base = PolyMgConfig()
        outs = [pipe.output]
        k0 = compile_fingerprint(outs, pipe.params, base, "p")

        def bumped(name, value):
            if name == "verify_level":
                return "cheap" if value != "cheap" else "full"
            if name == "backend":
                return (
                    INTERPRETED.name
                    if value != INTERPRETED.name
                    else PLANNED.name
                )
            if name == "native_cflags":
                return ("-O2", "-fPIC", "-shared")
            if name == "native_isolation":
                return next(m for m in ISOLATION_MODES if m != value)
            if name == "native_affinity":
                return next(m for m in AFFINITY_MODES if m != value)
            if name == "native_fault":
                return next(
                    f for f in NATIVE_FAULTS if f is not None and f != value
                )
            if value is None:  # optional fields (e.g. pool_byte_budget)
                return 1 << 20
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value + 1
            if isinstance(value, float):
                return value + 0.125
            if isinstance(value, dict):
                return {**value, 9: (2,) * 9}
            raise AssertionError(f"unhandled config field {name!r}")

        for f in fields(PolyMgConfig):
            cfg = base.with_(**{f.name: bumped(f.name, getattr(base, f.name))})
            k = compile_fingerprint(outs, pipe.params, cfg, "p")
            assert k != k0, f"field {f.name} did not bust the cache key"

    def test_params_bust_the_key(self, pipe):
        outs = [pipe.output]
        cfg = PolyMgConfig()
        k0 = compile_fingerprint(outs, pipe.params, cfg, "p")
        bumped = {k: v + 1 for k, v in pipe.params.items()}
        assert compile_fingerprint(outs, bumped, cfg, "p") != k0

    def test_name_busts_the_key(self, pipe):
        outs = [pipe.output]
        cfg = PolyMgConfig()
        assert compile_fingerprint(
            outs, pipe.params, cfg, "p"
        ) != compile_fingerprint(outs, pipe.params, cfg, "q")

    def test_spec_change_busts_the_key(self, pipe):
        other = build_poisson_cycle(
            2, N, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=2)
        )
        assert spec_fingerprint([pipe.output]) != spec_fingerprint(
            [other.output]
        )


class TestTaintedArtifacts:
    def test_fault_injected_artifacts_are_never_served(self, pipe):
        stats = compile_cache().stats
        t0 = stats.tainted_rejections
        first = pipe.compile(CFG)
        inject_slot_swap(first)  # corrupts the *shared* storage plan
        with pytest.raises(StorageSoundnessError):
            verify_compiled(first, "cheap")

        second = pipe.compile(CFG)
        assert stats.tainted_rejections == t0 + 1
        assert second.storage is not first.storage
        verify_compiled(second, "cheap")  # recompiled artifacts are clean

    def test_runtime_fault_hook_does_not_leak_through_cache(
        self, pipe, rng
    ):
        first = pipe.compile(CFG)
        inject_nan_poison(first)
        # the artifacts are untouched (the hook lives on the executor),
        # so the entry is still served — minus the poison
        second = pipe.compile(CFG)
        assert second.fault_injector is None
        f = make_rhs(rng, 2, N)
        out = second.execute(pipe.make_inputs(np.zeros_like(f), f))
        assert np.isfinite(out[pipe.output.name]).all()


class TestGuardedPipelineSharing:
    def test_instances_share_primary_and_fallback_compiles(self, pipe):
        stats = compile_cache().stats
        s0 = stats.stores
        g1 = GuardedPipeline(pipe, CFG)
        g2 = GuardedPipeline(pipe, CFG)
        assert g2.compiled.grouping is g1.compiled.grouping
        fb1 = g1._fallback_compiled()
        fb2 = g2._fallback_compiled()
        assert fb2 is not fb1
        assert fb2.grouping is fb1.grouping
        # two distinct configs compiled cold in total: primary + fallback
        assert stats.stores == s0 + 2


class TestLruAndStore:
    def test_lru_eviction(self, pipe):
        compiled = pipe.compile(CFG, cache=False)
        cache = CompileCache(maxsize=2)
        cache.store("a", compiled)
        cache.store("b", compiled)
        cache.store("c", compiled)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup("a") is None  # oldest entry evicted
        assert cache.lookup("c") is not None

    def test_store_requires_a_report(self, pipe):
        compiled = pipe.compile(CFG, cache=False)
        bare = CompiledPipeline(
            compiled.dag,
            compiled.config,
            compiled.grouping,
            compiled.schedule,
            compiled.storage,
        )
        cache = CompileCache(maxsize=2)
        with pytest.raises(ValueError):
            cache.store("x", bare)
