"""On-disk native artifact store: atomicity, corruption, eviction.

`NativeArtifactStore` is the disk half of the native JIT backend's
compile cache: shared objects keyed by the content address of
(emitted C source, cflags, compiler identity).  These tests exercise
the store in isolation with fabricated artifacts — no C toolchain is
required — plus one end-to-end warm-cache test that skips with a
notice when no compiler is on PATH.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import cache as cache_mod
from repro.cache import NativeArtifactStore, native_artifact_store
from repro.backend.native import discover_compiler

HAVE_CC = discover_compiler() is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason="no C toolchain on PATH (cc/gcc/clang)"
)


@pytest.fixture
def store(tmp_path):
    return NativeArtifactStore(tmp_path / "store", max_bytes=1 << 20)


def _stage(tmp_path, name: str, payload: bytes):
    built = tmp_path / name
    built.write_bytes(payload)
    return built


class TestPutGet:
    def test_round_trip(self, store, tmp_path):
        built = _stage(tmp_path, "a.so", b"\x7fELF fake artifact")
        final = store.put("k1", built, meta={"cc": "/usr/bin/cc"})
        assert final == store.root / "k1.so"
        assert not built.exists()  # moved, not copied
        got = store.get("k1")
        assert got == final
        assert got.read_bytes() == b"\x7fELF fake artifact"
        assert store.stats.stores == 1
        assert store.stats.hits == 1

    def test_miss_counts(self, store):
        assert store.get("absent") is None
        assert store.stats.misses == 1

    def test_sidecar_records_digest_and_meta(self, store, tmp_path):
        built = _stage(tmp_path, "a.so", b"bytes")
        store.put("k1", built, meta={"cc": "gcc"})
        record = json.loads((store.root / "k1.json").read_text())
        assert record["cc"] == "gcc"
        assert record["size"] == len(b"bytes")
        assert len(record["sha256"]) == 64

    def test_no_tmp_files_survive_put(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"x"))
        leftovers = [
            p
            for p in store.root.iterdir()
            if p.name.startswith(".") and p.name != ".store.lock"
        ]
        assert leftovers == []

    def test_last_writer_wins(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"first"))
        store.put("k1", _stage(tmp_path, "b.so", b"second"))
        assert store.get("k1").read_bytes() == b"second"


class TestCorruption:
    def test_truncated_artifact_is_rejected_and_deleted(
        self, store, tmp_path
    ):
        store.put("k1", _stage(tmp_path, "a.so", b"payload" * 64))
        (store.root / "k1.so").write_bytes(b"payload")  # bit rot
        assert store.get("k1") is None
        assert store.stats.corrupt_rejections == 1
        assert not (store.root / "k1.so").exists()
        assert not (store.root / "k1.json").exists()

    def test_unreadable_sidecar_is_rejected(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"payload"))
        (store.root / "k1.json").write_text("not json{")
        assert store.get("k1") is None
        assert store.stats.corrupt_rejections == 1

    def test_missing_sidecar_is_a_plain_miss(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"payload"))
        (store.root / "k1.json").unlink()
        assert store.get("k1") is None
        assert store.stats.corrupt_rejections == 0

    def test_reput_after_corruption_recovers(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"good" * 32))
        (store.root / "k1.so").write_bytes(b"bad")
        assert store.get("k1") is None  # deleted
        store.put("k1", _stage(tmp_path, "b.so", b"good" * 32))
        assert store.get("k1") is not None


class TestEviction:
    def test_lru_eviction_respects_byte_budget(self, tmp_path):
        store = NativeArtifactStore(tmp_path / "store", max_bytes=250)
        for i, key in enumerate(("old", "mid", "new")):
            built = _stage(tmp_path, f"{key}.built", b"x" * 100)
            store.put(key, built)
            # distinct mtimes so LRU ordering is deterministic
            os.utime(store.root / f"{key}.so", (i, i))
        store._evict_over_budget()
        assert store.get("old") is None  # oldest evicted
        assert store.get("mid") is not None
        assert store.get("new") is not None
        assert store.stats.evictions >= 1

    def test_put_never_evicts_its_own_key(self, tmp_path):
        store = NativeArtifactStore(tmp_path / "store", max_bytes=50)
        store.put("huge", _stage(tmp_path, "a.built", b"x" * 100))
        # over budget, but the just-stored key must survive
        assert store.get("huge") is not None

    def test_get_refreshes_lru_position(self, tmp_path):
        store = NativeArtifactStore(tmp_path / "store", max_bytes=250)
        for i, key in enumerate(("a", "b")):
            store.put(key, _stage(tmp_path, f"{key}.built", b"x" * 100))
            os.utime(store.root / f"{key}.so", (i, i))
        store.get("a")  # touch: now newer than b
        store.put("c", _stage(tmp_path, "c.built", b"x" * 100))
        assert store.get("a") is not None
        assert store.get("b") is None  # b became the LRU victim

    def test_clear_removes_everything(self, store, tmp_path):
        store.put("k1", _stage(tmp_path, "a.so", b"x"))
        store.clear()
        assert list(store.root.glob("*.so")) == []
        assert store.get("k1") is None


class TestProcessWideSingleton:
    def test_rekeys_on_cache_dir_change(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path / "a"))
        first = native_artifact_store()
        assert native_artifact_store() is first
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path / "b"))
        second = native_artifact_store()
        assert second is not first
        assert second.root == tmp_path / "b"

    def test_byte_budget_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_DIR", str(tmp_path / "c"))
        monkeypatch.setenv("REPRO_NATIVE_CACHE_BYTES", "12345")
        assert native_artifact_store().max_bytes == 12345

    def test_bad_byte_budget_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE_BYTES", "not-a-number")
        assert cache_mod._native_store_bytes() == 256 * 1024 * 1024


@needs_cc
class TestWarmProcessCacheHit:
    def test_second_build_is_a_cache_hit(self, tmp_path, monkeypatch):
        from repro.compiler import compile_pipeline
        from repro.multigrid.cycles import build_poisson_cycle
        from repro.multigrid.reference import MultigridOptions
        from repro.variants import polymg_native

        monkeypatch.setenv(
            "REPRO_NATIVE_CACHE_DIR", str(tmp_path / "warm")
        )
        pipe = build_poisson_cycle(
            2, 16, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        )
        cfg = polymg_native(tile_sizes={2: (8, 16)}, num_threads=1)
        rng = np.random.default_rng(7)
        inputs = pipe.make_inputs(
            rng.standard_normal((18, 18)), rng.standard_normal((18, 18))
        )

        def build():
            compiled = compile_pipeline(
                pipe.output, pipe.params, cfg, name=pipe.name, cache=False
            )
            try:
                assert compiled.ensure_native(timeout=120)
                out = compiled.execute(dict(inputs))[pipe.output.name]
                return compiled.stats.native_cache_hits, out
            finally:
                compiled.close()

        cold_hits, cold_out = build()
        warm_hits, warm_out = build()
        assert cold_hits == 0
        assert warm_hits == 1  # the .so came straight off disk
        np.testing.assert_array_equal(cold_out, warm_out)
