"""Tests for the variant registry and the auto-tuner."""

import numpy as np
import pytest

from repro.config import PolyMgConfig
from repro.errors import TrialFailure
from repro.model import PAPER_MACHINE
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.tuning import (
    TuneMemo,
    autotune_measured,
    autotune_model,
    config_space,
    group_limit_space,
    tile_space,
)
from repro.variants import (
    POLYMG_VARIANTS,
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
    variant_config,
)


class TestVariants:
    def test_naive_disables_everything(self):
        cfg = polymg_naive()
        assert not cfg.fuse and not cfg.tile
        assert not cfg.intra_group_reuse
        assert not cfg.inter_group_reuse
        assert not cfg.pooled_allocation

    def test_opt_is_stock_polymage(self):
        cfg = polymg_opt()
        assert cfg.fuse and cfg.tile
        assert not cfg.intra_group_reuse
        assert not cfg.pooled_allocation

    def test_opt_plus_enables_storage(self):
        cfg = polymg_opt_plus()
        assert cfg.intra_group_reuse
        assert cfg.inter_group_reuse
        assert cfg.pooled_allocation
        assert not cfg.diamond_smoothing

    def test_dtile_variant(self):
        cfg = polymg_dtile_opt_plus()
        assert cfg.diamond_smoothing
        assert cfg.dtile_conservative_copies

    def test_registry_and_overrides(self):
        cfg = variant_config("polymg-opt+", group_size_limit=3)
        assert cfg.group_size_limit == 3
        with pytest.raises(KeyError):
            variant_config("polymg-imaginary")
        assert set(POLYMG_VARIANTS) >= {
            "polymg-naive",
            "polymg-opt",
            "polymg-opt+",
            "polymg-dtile-opt+",
            "handopt",
            "handopt+pluto",
        }

    def test_config_tile_shape_fallback(self):
        cfg = PolyMgConfig()
        assert len(cfg.tile_shape(2)) == 2
        assert len(cfg.tile_shape(3)) == 3
        with pytest.raises(ValueError):
            PolyMgConfig(tile_sizes={}).tile_shape(2)


class TestTuningSpaces:
    def test_paper_space_sizes(self):
        # paper section 3.2.4: 80 configurations in 2-D, 135 in 3-D
        assert len(tile_space(2)) * len(group_limit_space()) == 80
        assert len(tile_space(3)) * len(group_limit_space()) == 135

    def test_tile_ranges(self):
        for outer, inner in tile_space(2):
            assert 8 <= outer <= 64 and 64 <= inner <= 512
        for o1, o2, inner in tile_space(3):
            assert 8 <= o1 <= 32 and 8 <= o2 <= 32 and 64 <= inner <= 256

    def test_config_space_yields_configs(self):
        base = polymg_opt_plus()
        pts = list(config_space(base, 2))
        assert len(pts) == 80
        cfg, tiles, limit = pts[0]
        assert cfg.tile_sizes[2] == tiles
        assert cfg.group_size_limit == limit


class TestAutotune:
    def test_model_tuning_finds_minimum(self):
        opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
        pipe = build_poisson_cycle(2, 1024, opts)
        res = autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=2
        )
        assert res.configurations == 80
        assert res.best.score == min(p.score for p in res.points)
        cfg = res.best_config(polymg_opt_plus(), 2)
        assert cfg.tile_sizes[2] == res.best.tile_shape

    def test_measured_tuning_runs(self, monkeypatch):
        import repro.tuning.autotuner as at

        monkeypatch.setattr(at, "GROUP_LIMITS", (4,))
        monkeypatch.setattr(
            at, "tile_space", lambda ndim: [(8, 16), (16, 32)]
        )
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 32, opts)
        rng = np.random.default_rng(0)
        f = np.zeros((34, 34))
        f[1:-1, 1:-1] = rng.standard_normal((32, 32))
        res = autotune_measured(
            pipe,
            polymg_opt_plus(),
            lambda: pipe.make_inputs(np.zeros_like(f), f),
        )
        assert res.configurations == 2
        assert res.best.score > 0
        # every trial reports its compile/execute split
        assert all(p.execute_time > 0 for p in res.points)

    def test_measured_tuning_drives_whole_solve_tiers(self, monkeypatch):
        """With a whole-solve base config, each measured trial times a
        k-cycle ``polymg_drive`` burst and scores per-cycle wall time,
        so tile sizes are searched under the driver's dispatch regime."""
        from repro.backend.native import discover_compiler
        from repro.variants import polymg_driver

        if discover_compiler() is None:
            pytest.skip("no C toolchain on PATH (cc/gcc/clang)")
        import repro.tuning.autotuner as at

        monkeypatch.setattr(at, "GROUP_LIMITS", (4,))
        monkeypatch.setattr(
            at, "tile_space", lambda ndim: [(8, 16), (16, 32)]
        )
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 32, opts)
        rng = np.random.default_rng(0)
        f = np.zeros((34, 34))
        f[1:-1, 1:-1] = rng.standard_normal((32, 32))
        res = autotune_measured(
            pipe,
            polymg_driver(
                driver_hook_cycles=4, native_isolation="none"
            ),
            lambda: pipe.make_inputs(np.zeros_like(f), f),
        )
        assert res.configurations == 2
        assert res.best.score > 0
        # repeats=1 and a 4-cycle burst: the trial's total execute
        # time is exactly four per-cycle scores — proof the burst
        # served all four cycles through the driver
        for p in res.points:
            assert p.execute_time == pytest.approx(4 * p.score)

    def test_compile_execute_split_and_cache_hit_skip(self, monkeypatch):
        import repro.tuning.autotuner as at
        from repro.cache import compile_cache

        monkeypatch.setattr(at, "GROUP_LIMITS", (4,))
        monkeypatch.setattr(
            at, "tile_space", lambda ndim: [(8, 16), (16, 32)]
        )
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        pipe = build_poisson_cycle(2, 32, opts)
        compile_cache().clear()

        cold = autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=2
        )
        assert cold.cache_hit_count == 0
        assert all(p.compile_time > 0 for p in cold.points)
        assert all(p.execute_time > 0 for p in cold.points)
        assert cold.compile_time_total == pytest.approx(
            sum(p.compile_time for p in cold.points)
        )

        # re-tuning the same space: every fingerprint is known, so no
        # trial recompiles — the compile column collapses to lookups
        warm = autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=2
        )
        assert warm.cache_hit_count == len(warm.points) == 2
        assert warm.best.score == pytest.approx(cold.best.score)


class TestTuneMemo:
    def _pipe(self):
        opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        return build_poisson_cycle(2, 32, opts)

    def _shrink(self, monkeypatch):
        import repro.tuning.autotuner as at

        monkeypatch.setattr(at, "GROUP_LIMITS", (4,))
        monkeypatch.setattr(
            at, "tile_space", lambda ndim: [(8, 16), (16, 32)]
        )

    def test_shared_memo_dedupes_repeated_sweeps(self, monkeypatch):
        self._shrink(monkeypatch)
        pipe = self._pipe()
        memo = TuneMemo()
        cold = autotune_model(
            pipe,
            polymg_opt_plus(),
            PAPER_MACHINE,
            threads=24,
            cycles=2,
            memo=memo,
        )
        assert cold.memo_hits == 0
        assert len(memo) == 2
        warm = autotune_model(
            pipe,
            polymg_opt_plus(),
            PAPER_MACHINE,
            threads=24,
            cycles=2,
            memo=memo,
        )
        # every point served from the memo, same winner, no re-scoring
        assert warm.memo_hits == len(warm.points) == 2
        assert memo.hits == 2
        assert warm.best.score == cold.best.score
        assert warm.best.fingerprint() == cold.best.fingerprint()

    def test_memo_is_mode_keyed(self, monkeypatch):
        """Model scores and different thread counts must not alias."""
        self._shrink(monkeypatch)
        pipe = self._pipe()
        memo = TuneMemo()
        autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE,
            threads=24, cycles=2, memo=memo,
        )
        other = autotune_model(
            pipe, polymg_opt_plus(), PAPER_MACHINE,
            threads=4, cycles=2, memo=memo,
        )
        assert other.memo_hits == 0
        assert len(memo) == 4

    def test_memoized_failures_stay_quarantined(self, monkeypatch):
        """A configuration that failed is latched: the second sweep
        re-quarantines it from the memo without re-running the trial
        (the breakers' don't-retry-known-bad semantics)."""
        from repro.tuning.autotuner import _tune

        self._shrink(monkeypatch)
        pipe = self._pipe()
        memo = TuneMemo()
        calls = []

        def score(cfg):
            calls.append(cfg.tile_sizes[2])
            if cfg.tile_sizes[2] == (8, 16):
                raise RuntimeError("synthetic trial fault")
            return 1.0

        first = _tune(
            pipe, polymg_opt_plus(), score, memo=memo, mode="t"
        )
        assert len(first.failed) == 1 and len(first.points) == 1
        calls_after_first = len(calls)
        second = _tune(
            pipe, polymg_opt_plus(), score, memo=memo, mode="t"
        )
        assert len(calls) == calls_after_first  # nothing re-ran
        assert second.memo_hits == 2
        assert len(second.failed) == 1
        assert isinstance(second.failed[0], TrialFailure)

    def test_tie_break_is_deterministic_by_fingerprint(self, monkeypatch):
        """Equal scores resolve by the stable config fingerprint, not
        dict/insertion order."""
        from repro.tuning.autotuner import _tune

        self._shrink(monkeypatch)
        pipe = self._pipe()
        res = _tune(pipe, polymg_opt_plus(), lambda cfg: 1.0)
        fingerprints = sorted(p.fingerprint() for p in res.points)
        assert res.best.fingerprint() == fingerprints[0]
        # and the winner is identical on a re-sweep over the same space
        again = _tune(pipe, polymg_opt_plus(), lambda cfg: 1.0)
        assert again.best.fingerprint() == res.best.fingerprint()
