"""Ring-buffered IncidentLog: bounded memory with drop accounting."""

from __future__ import annotations

import threading

from repro.resilience import IncidentLog


class TestRingBuffer:
    def test_unbounded_by_default(self):
        log = IncidentLog()
        for _ in range(100):
            log.record("fault")
        assert len(log.records) == 100
        stats = log.ring_stats()
        assert stats["capacity"] is None
        assert stats["dropped"] == 0

    def test_capacity_bounds_retention(self):
        log = IncidentLog(capacity=4)
        for i in range(10):
            log.record("fault", cycle=i)
        records = log.records
        assert len(records) == 4
        # newest retained, oldest dropped
        assert [r.cycle for r in records] == [6, 7, 8, 9]

    def test_drop_accounting(self):
        log = IncidentLog(capacity=4)
        for _ in range(10):
            log.record("fault")
        stats = log.ring_stats()
        assert stats["dropped"] == 6
        assert stats["retained"] == 4
        assert stats["total_recorded"] == 10
        assert stats["first_drop_ts"] is not None
        assert stats["last_drop_ts"] is not None
        assert stats["last_drop_ts"] >= stats["first_drop_ts"]

    def test_no_drop_timestamps_before_any_drop(self):
        log = IncidentLog(capacity=8)
        log.record("fault")
        stats = log.ring_stats()
        assert stats["dropped"] == 0
        assert stats["first_drop_ts"] is None
        assert stats["last_drop_ts"] is None

    def test_sequence_numbers_survive_drops(self):
        # seq identifies an incident globally even after the ring
        # forgot its predecessors
        log = IncidentLog(capacity=2)
        for _ in range(5):
            log.record("fault")
        assert [r.seq for r in log.records] == [3, 4]

    def test_records_snapshot_is_isolated(self):
        log = IncidentLog(capacity=4)
        log.record("fault")
        snap = log.records
        log.record("fault")
        assert len(snap) == 1  # old snapshot unaffected

    def test_concurrent_recording_is_safe(self):
        log = IncidentLog(capacity=64)
        barrier = threading.Barrier(4)

        def hammer():
            barrier.wait()
            for _ in range(250):
                log.record("fault")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = log.ring_stats()
        assert stats["total_recorded"] == 1000
        assert stats["retained"] == 64
        assert stats["dropped"] == 936
        # seq values are unique and the retained tail is contiguous
        seqs = [r.seq for r in log.records]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
