"""Unit tests for the degradation ladder's circuit breakers.

All time-dependent behaviour runs on an injected fake clock, so
cooldowns, probes, and re-promotions are fully deterministic.
"""

import pytest

from repro.errors import NumericalDivergenceError
from repro.resilience import DegradationLadder, IncidentLog
from repro.resilience.ladder import CLOSED, HALF_OPEN, OPEN
from repro.variants import LADDER_ORDER

RUNGS = ("fast", "medium", "slow")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def make_ladder(clock, **kw):
    kw.setdefault("base_cooldown", 10.0)
    kw.setdefault("promote_after", 2)
    return DegradationLadder(RUNGS, clock=clock, **kw)


class TestSelection:
    def test_healthy_ladder_serves_the_top_rung(self, clock):
        ladder = make_ladder(clock)
        assert ladder.select() == "fast"
        assert ladder.active() == "fast"

    def test_default_order_is_the_variant_ladder(self, clock):
        ladder = DegradationLadder(clock=clock)
        assert ladder.variants == LADDER_ORDER
        assert ladder.select() == "polymg-driver"

    def test_failure_demotes_to_the_next_rung(self, clock):
        ladder = make_ladder(clock)
        ladder.record_failure("fast", NumericalDivergenceError("boom"))
        assert ladder.health["fast"].state == OPEN
        assert ladder.select() == "medium"

    def test_all_open_serves_the_degradation_floor(self, clock):
        ladder = make_ladder(clock)
        for name in RUNGS:
            ladder.record_failure(name)
        assert all(ladder.health[n].state == OPEN for n in RUNGS)
        # nothing healthy: the last rung serves anyway
        clock.advance(1.0)
        assert ladder.active() == "slow"

    def test_failure_threshold_tolerates_blips(self, clock):
        ladder = make_ladder(clock, failure_threshold=3)
        ladder.record_failure("fast")
        ladder.record_failure("fast")
        assert ladder.health["fast"].state == CLOSED
        ladder.record_success("fast")  # resets the consecutive count
        ladder.record_failure("fast")
        ladder.record_failure("fast")
        assert ladder.select() == "fast"
        ladder.record_failure("fast")
        assert ladder.health["fast"].state == OPEN


class TestCooldownAndProbing:
    def test_open_circuit_stays_open_until_cooldown(self, clock):
        ladder = make_ladder(clock, base_cooldown=10.0)
        ladder.record_failure("fast")
        clock.advance(9.9)
        assert ladder.select() == "medium"
        clock.advance(0.2)
        assert ladder.select() == "fast"  # probe
        assert ladder.health["fast"].state == HALF_OPEN

    def test_promotion_after_enough_probe_successes(self, clock):
        ladder = make_ladder(clock, base_cooldown=10.0, promote_after=2)
        ladder.record_failure("fast")
        clock.advance(11.0)
        assert ladder.select() == "fast"
        ladder.record_success("fast")
        assert ladder.health["fast"].state == HALF_OPEN
        ladder.record_success("fast")
        assert ladder.health["fast"].state == CLOSED
        assert ladder.health["fast"].cooldown == 0.0
        assert "promote" in ladder.log.kinds()

    def test_probe_failure_retrips_with_escalated_cooldown(self, clock):
        ladder = make_ladder(
            clock, base_cooldown=10.0, cooldown_factor=2.0
        )
        ladder.record_failure("fast")
        assert ladder.health["fast"].cooldown == 10.0
        clock.advance(11.0)
        assert ladder.select() == "fast"  # half-open probe
        ladder.record_failure("fast")  # probe fails
        assert ladder.health["fast"].state == OPEN
        assert ladder.health["fast"].cooldown == 20.0
        clock.advance(11.0)
        assert ladder.select() == "medium"  # still cooling down

    def test_cooldown_is_capped(self, clock):
        ladder = make_ladder(
            clock, base_cooldown=10.0, cooldown_factor=10.0,
            max_cooldown=50.0,
        )
        for _ in range(4):
            ladder.trip("fast")
        assert ladder.health["fast"].cooldown == 50.0

    def test_lost_probe_lease_is_reclaimed(self, clock):
        # a prober that dies without recording an outcome (e.g. a
        # non-ReproError escaped the attempt) must not leave the rung
        # stuck half-open with its slot taken forever
        ladder = make_ladder(
            clock, base_cooldown=10.0, probe_timeout=30.0
        )
        ladder.record_failure("fast")
        clock.advance(11.0)
        assert ladder.select() == "fast"  # probe handed out...
        clock.advance(1.0)
        assert ladder.select() == "medium"  # lease still held
        clock.advance(30.0)
        assert ladder.select() == "fast"  # lease expired: re-probe
        assert any(
            r.kind == "probe" and r.action == "lease-reclaimed"
            for r in ladder.log.records
        )
        # the reclaimed probe heals the rung normally
        ladder.record_success("fast")
        ladder.record_success("fast")
        assert ladder.health["fast"].state == CLOSED

    def test_live_probe_lease_is_not_reclaimed_early(self, clock):
        ladder = make_ladder(
            clock, base_cooldown=10.0, probe_timeout=30.0
        )
        ladder.record_failure("fast")
        clock.advance(11.0)
        assert ladder.select() == "fast"
        clock.advance(29.0)  # just inside the lease
        assert ladder.select() == "medium"

    def test_promotion_resets_the_escalation(self, clock):
        ladder = make_ladder(clock, base_cooldown=10.0, promote_after=1)
        ladder.record_failure("fast")
        clock.advance(11.0)
        ladder.select()
        ladder.record_success("fast")  # promoted, cooldown reset
        ladder.record_failure("fast")
        assert ladder.health["fast"].cooldown == 10.0  # base again


class TestHealthAccounting:
    def test_error_rate_over_the_sliding_window(self, clock):
        ladder = make_ladder(clock, window=4, failure_threshold=100)
        h = ladder.health["fast"]
        assert h.error_rate() == 0.0
        ladder.record_failure("fast")
        ladder.record_success("fast")
        assert h.error_rate() == 0.5
        for _ in range(4):  # failure scrolls out of the window
            ladder.record_success("fast")
        assert h.error_rate() == 0.0

    def test_counters_and_snapshot(self, clock):
        ladder = make_ladder(clock)
        ladder.record_success("fast")
        ladder.record_failure("fast")
        snap = ladder.snapshot()
        assert set(snap) == set(RUNGS)
        assert snap["fast"]["invocations"] == 2
        assert snap["fast"]["failures"] == 1
        assert snap["fast"]["trips"] == 1
        assert snap["fast"]["state"] == OPEN
        assert snap["medium"]["state"] == CLOSED

    def test_ladder_moves_land_in_the_incident_log(self, clock):
        log = IncidentLog()
        ladder = make_ladder(clock, log=log, promote_after=1)
        ladder.record_failure("fast", ValueError("bad"))
        clock.advance(11.0)
        ladder.select()
        ladder.record_success("fast")
        assert log.kinds() == ["demote", "probe", "promote"]
        demote = log.of_kind("demote")[0]
        assert demote.variant == "fast"
        assert "ValueError" in demote.error

    def test_trip_reason_is_recorded(self, clock):
        log = IncidentLog()
        ladder = make_ladder(clock, log=log)
        ladder.trip("medium", reason="stagnation")
        assert log.of_kind("demote")[0].action == "stagnation"


class TestValidation:
    def test_rejects_degenerate_ladders(self, clock):
        with pytest.raises(ValueError):
            DegradationLadder(("only",), clock=clock)
        with pytest.raises(ValueError):
            make_ladder(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            make_ladder(clock, promote_after=0)
        with pytest.raises(ValueError):
            make_ladder(clock, probe_timeout=0.0)
