"""DegradationLadder under concurrency: the half-open probe slot.

A half-open breaker admits exactly one probe invocation.  Before the
ladder was lock-protected, two workers selecting simultaneously after a
cooldown could *both* observe OPEN-with-expired-cooldown, both flip the
rung to HALF_OPEN, and both run "the" probe — double the blast radius
of a still-broken variant.  These tests drive the transition from many
threads and assert the slot is claimed exactly once.
"""

from __future__ import annotations

import threading

import pytest

from repro.resilience import HALF_OPEN, OPEN, DegradationLadder


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def tripped_ladder(clock, n_variants=2):
    names = tuple(f"rung-{i}" for i in range(n_variants))
    ladder = DegradationLadder(
        names, failure_threshold=1, base_cooldown=2.0, clock=clock
    )
    ladder.record_failure(names[0], RuntimeError("trip"))
    assert ladder.health[names[0]].state == OPEN
    clock.advance(3.0)  # cooldown expired: next select may probe
    return ladder, names


class TestProbeSlotClaim:
    def test_exactly_one_thread_wins_the_probe(self, clock):
        ladder, names = tripped_ladder(clock)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        picks: list[str] = [""] * n_threads

        def select(i):
            barrier.wait()
            picks[i] = ladder.select()

        threads = [
            threading.Thread(target=select, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # exactly one selector claimed the half-open probe; everyone
        # else fell through to the healthy floor rung
        assert picks.count(names[0]) == 1
        assert picks.count(names[1]) == n_threads - 1
        health = ladder.health[names[0]]
        assert health.state == HALF_OPEN
        assert health.probe_in_flight

    def test_probe_slot_reopens_after_failure(self, clock):
        ladder, names = tripped_ladder(clock)
        assert ladder.select() == names[0]  # probe claimed
        ladder.record_failure(names[0], RuntimeError("probe failed"))
        assert ladder.health[names[0]].state == OPEN
        assert not ladder.health[names[0]].probe_in_flight
        # a new cooldown must elapse before the next probe
        assert ladder.select() == names[1]
        clock.advance(5.0)
        assert ladder.select() == names[0]

    def test_probe_success_reopens_the_rung_for_everyone(self, clock):
        ladder, names = tripped_ladder(clock)
        # promote_after=2: each probe round admits exactly one caller
        # until enough successes close the breaker again
        for _ in range(ladder.promote_after):
            assert ladder.select() == names[0]
            assert ladder.select() == names[1]  # slot busy: floor
            ladder.record_success(names[0])
            assert not ladder.health[names[0]].probe_in_flight
        # once closed, any number of selectors get the rung
        assert [ladder.select() for _ in range(4)] == [names[0]] * 4

    def test_concurrent_select_record_stress(self, clock):
        # invariant under arbitrary interleaving: at most one claimed
        # probe per rung at any moment, and no exceptions anywhere
        ladder, names = tripped_ladder(clock)
        errors: list[Exception] = []
        stop = threading.Event()

        def worker(seed):
            import random

            rnd = random.Random(seed)
            while not stop.is_set():
                try:
                    pick = ladder.select()
                    if rnd.random() < 0.5:
                        ladder.record_success(pick)
                    else:
                        ladder.record_failure(
                            pick, RuntimeError("chaos")
                        )
                    if rnd.random() < 0.1:
                        clock.advance(1.0)
                    ladder.snapshot()
                except Exception as error:  # noqa: BLE001
                    errors.append(error)
                    return

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in range(6)
        ]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=30)
        timer.cancel()
        stop.set()
        assert errors == []
        assert not any(t.is_alive() for t in threads)


class TestRungCeiling:
    def test_ceiling_restricts_selection(self, clock):
        ladder = DegradationLadder(
            ("top", "mid", "floor"), clock=clock
        )
        assert ladder.select() == "top"
        assert ladder.select(ceiling="mid") == "mid"
        assert ladder.select(ceiling="floor") == "floor"

    def test_ceiling_composes_with_breakers(self, clock):
        ladder = DegradationLadder(
            ("top", "mid", "floor"),
            failure_threshold=1,
            clock=clock,
        )
        ladder.record_failure("mid", RuntimeError("trip"))
        assert ladder.select(ceiling="mid") == "floor"

    def test_unknown_ceiling_raises(self, clock):
        ladder = DegradationLadder(("a", "b"), clock=clock)
        with pytest.raises(KeyError):
            ladder.select(ceiling="nonexistent")

    def test_active_respects_ceiling_without_side_effects(self, clock):
        ladder = DegradationLadder(("a", "b"), clock=clock)
        assert ladder.active(ceiling="b") == "b"
        assert ladder.select() == "a"  # nothing was claimed or tripped
