"""Supervised solves: checkpoint/restart, remediation, budgets — and
the end-to-end acceptance scenario of the resilience subsystem: a solve
hit by a transient fault completes via checkpoint/restart on a demoted
variant, and the ladder re-promotes the fast rung within the cooldown
window, with the whole trail visible in the structured report.
"""

import numpy as np
import pytest

from repro import (
    MultigridOptions,
    build_poisson_cycle,
    solve_supervised,
)
from repro.errors import (
    NumericalDivergenceError,
    SolveAbortedError,
)
from repro.resilience import (
    DegradationLadder,
    ResilientPipeline,
    SolveSupervisor,
    SupervisorPolicy,
)
from repro.variants import LADDER_ORDER
from repro.verify.faults import (
    inject_ghost_shrink,
    inject_nan_poison,
    inject_transient_nan_poison,
)

from tests.conftest import make_rhs

N = 16
OVERRIDES = {"tile_sizes": {2: (8, 16)}}


class TickingClock:
    """Advances a fixed step per reading — deterministic cooldowns."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


@pytest.fixture
def pipe():
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    return build_poisson_cycle(2, N, opts)


@pytest.fixture
def f(rng):
    return make_rhs(rng, 2, N)


def make_supervisor(pipe, policy=None, overrides=None, **ladder_kw):
    ladder_kw.setdefault("clock", TickingClock())
    ladder_kw.setdefault("base_cooldown", 3.0)
    ladder_kw.setdefault("promote_after", 2)
    ladder = DegradationLadder(**ladder_kw)
    return SolveSupervisor(
        pipe,
        policy or SupervisorPolicy(max_cycles=25, tol=1e-5),
        ladder=ladder,
        config_overrides=overrides if overrides is not None else OVERRIDES,
    )


class TestAcceptance:
    def test_transient_fault_checkpoint_restart_and_repromotion(
        self, pipe, f
    ):
        """The headline scenario: nan-poison on exactly one invocation
        of ``polymg-driver``; the solve completes via checkpoint/restart
        on the demoted rung and the ladder re-promotes ``polymg-driver``
        within the cooldown window.  (An armed fault injector forces
        the driver rung onto its per-cycle fallback path, so the fault
        fires deterministically on the named invocation.)"""
        sup = make_supervisor(pipe)
        compiled = sup.resilient.compiled_for("polymg-driver")
        inject_transient_nan_poison(compiled, invocation=1)

        result = sup.solve(f)

        # the solve completed, and converged
        assert result.converged
        assert result.residual_norms[-1] < 1e-5
        assert result.restores == 1

        # one checkpoint restore after the fault, no lost cycles:
        # cycle count equals accepted cycles, the faulted attempt
        # retried from the last-known-good iterate
        assert result.cycles == len(result.variant_trail)

        # the first accepted cycles ran on the demoted rung ...
        assert result.variant_trail[0] == "polymg-native"
        # ... and the ladder re-promoted the fast rung within cooldown
        assert result.variant_trail[-1] == "polymg-driver"
        assert result.health["polymg-driver"]["state"] == "closed"

        # the full incident trail, in causal order
        kinds = result.incidents.kinds()
        for kind in (
            "fault", "demote", "checkpoint-restore", "probe", "promote"
        ):
            assert kind in kinds, f"missing incident kind {kind!r}"
        assert kinds.index("fault") < kinds.index("demote")
        assert kinds.index("demote") < kinds.index("checkpoint-restore")
        assert kinds.index("checkpoint-restore") < kinds.index("probe")
        assert kinds.index("probe") < kinds.index("promote")

        # no pool buffers were stranded by the faulted invocation
        assert result.incidents.count("leak") == 0

        # the trail is visible in the structured report ...
        report = result.report()
        assert report["status"] == "converged"
        assert [r["kind"] for r in report["incidents"]] == kinds
        assert report["health"]["polymg-driver"]["trips"] == 1
        # ... and mirrored onto the faulted variant's compile report
        assert any(
            r["kind"] == "fault" for r in compiled.report.incidents
        )

    def test_solution_matches_unsupervised_solve(self, pipe, f):
        """Supervision must not change the mathematics: a clean
        supervised solve converges like the plain solve loop."""
        sup = make_supervisor(pipe)
        result = sup.solve(f)
        assert result.converged
        assert result.restores == 0
        assert len(result.incidents) == 0
        assert set(result.variant_trail) == {"polymg-driver"}

        from repro.multigrid.kernels import norm_residual

        h = 1.0 / (N + 1)
        assert float(norm_residual(result.u, f, h)) < 1e-5


class TestCheckpointRestart:
    def test_persistent_fault_walks_down_the_ladder(self, pipe, f):
        """A fault that re-fires on every ``polymg-driver`` invocation
        keeps the rung tripping; the solve still converges on lower
        rungs."""
        sup = make_supervisor(pipe, base_cooldown=1000.0)
        compiled = sup.resilient.compiled_for("polymg-driver")
        inject_nan_poison(compiled)

        result = sup.solve(f)
        assert result.converged
        assert result.restores == 1
        assert "polymg-driver" not in result.variant_trail
        assert result.health["polymg-driver"]["state"] == "open"

    def test_restore_budget_exhaustion_aborts_loudly(self, pipe, f):
        """When every rung keeps faulting, the supervisor gives up with
        the typed abort error instead of looping forever."""
        sup = make_supervisor(
            pipe,
            SupervisorPolicy(max_cycles=25, tol=1e-5, max_restores=2),
            base_cooldown=1000.0,
        )
        for name in LADDER_ORDER:
            # poison every stage output on every rung (naive has no
            # internal scratch stages, so use the hook directly)
            compiled = sup.resilient.compiled_for(name)
            compiled.fault_injector = (
                lambda stage, out: out.fill(np.nan)
            )

        with pytest.raises(SolveAbortedError) as exc:
            sup.solve(f)
        assert exc.value.context["restores"] == 3

    def test_faulted_cycle_retries_from_checkpoint(self, pipe, f):
        """The iterate accepted before the fault is what the retry
        starts from — converged work is never discarded."""
        sup = make_supervisor(pipe)
        compiled = sup.resilient.compiled_for("polymg-driver")
        # fault on the 4th invocation: three cycles already accepted
        # (the armed injector pins the rung to one-cycle attempts)
        inject_transient_nan_poison(compiled, invocation=4)

        result = sup.solve(f)
        assert result.converged
        restore = result.incidents.of_kind("checkpoint-restore")[0]
        assert restore.details["cycle"] == 3  # restored at cycle 3
        assert restore.details["variant"] == "polymg-driver"

    def test_divergence_after_clean_cycle_restores_too(self, pipe, f):
        """A cycle that executes cleanly but blows up the residual is
        caught by the monitor and treated as a fault on the serving
        variant."""
        sup = make_supervisor(
            pipe, SupervisorPolicy(max_cycles=25, tol=1e-5,
                                   growth_factor=2.0)
        )
        compiled = sup.resilient.compiled_for("polymg-driver")

        # corrupt the output (finite, so runtime guards stay silent,
        # but hugely wrong so the residual monitor fires) on one
        # invocation only
        def corrupt(stage, out):
            if compiled.stats.executions == 2:
                out *= 1e6

        compiled.fault_injector = corrupt
        result = sup.solve(f)
        assert result.converged
        assert result.restores >= 1
        faults = result.incidents.of_kind("fault")
        assert any(
            "NumericalDivergenceError" in (r.error or "") for r in faults
        )


class TestBudgets:
    def test_deadline_stops_with_best_iterate(self, pipe, f):
        clock = TickingClock(step=1.0)
        ladder = DegradationLadder(clock=clock)
        sup = SolveSupervisor(
            pipe,
            SupervisorPolicy(max_cycles=1000, deadline=5.0),
            ladder=ladder,
            config_overrides=OVERRIDES,
            clock=clock,
        )
        result = sup.solve(f)
        assert result.status == "deadline"
        assert not result.converged
        assert result.cycles < 1000
        assert result.incidents.count("deadline") == 1
        # the iterate is the best-so-far, not garbage
        assert result.residual_norms[-1] < result.residual_norms[0]

    def test_cycle_budget_status(self, pipe, f):
        sup = make_supervisor(
            pipe, SupervisorPolicy(max_cycles=2, tol=1e-12)
        )
        result = sup.solve(f)
        assert result.status == "cycle-budget"
        assert result.cycles == 2


class TestStagnationRemediation:
    def test_remediation_ladder_applies_in_order(self, pipe, f):
        """With the floor at 0 every window of cycles 'stagnates', so
        the remediation ladder walks bump-smoothing -> switch-cycle ->
        demote."""
        policy = SupervisorPolicy(
            max_cycles=14,
            tol=None,
            stagnation_window=3,
            stagnation_floor=0.0,
        )
        # stagnation is only assessed at hook boundaries; pin the
        # driver to one-cycle bursts so the remediation cadence is
        # per-cycle, as the walk below assumes
        sup = make_supervisor(
            pipe, policy, overrides={**OVERRIDES, "driver_hook_cycles": 1}
        )
        result = sup.solve(f)

        assert result.remediations[:3] == [
            "bump-smoothing", "switch-cycle", "demote"
        ]
        stag = result.incidents.of_kind("stagnation")
        assert [r.action for r in stag[:3]] == result.remediations[:3]

        # bump-smoothing rebuilt the spec with more smoothing steps
        assert sup.pipeline.opts.n1 == 3
        # switch-cycle rebuilt it as a W-cycle
        assert sup.pipeline.opts.cycle == "W"
        # demote tripped the serving rung
        assert result.health["polymg-driver"]["trips"] >= 1

    def test_true_stagnation_is_not_flagged_on_a_converging_solve(
        self, pipe, f
    ):
        sup = make_supervisor(
            pipe,
            SupervisorPolicy(
                max_cycles=20, tol=1e-5,
                stagnation_window=4, stagnation_floor=0.95,
            ),
        )
        result = sup.solve(f)
        assert result.converged
        assert result.remediations == []


class TestResilientPipeline:
    def test_execute_steps_down_the_ladder_transparently(self, pipe, f):
        resilient = ResilientPipeline(
            pipe,
            DegradationLadder(clock=TickingClock(), base_cooldown=1000.0),
            config_overrides=OVERRIDES,
        )
        inject_nan_poison(resilient.compiled_for("polymg-driver"))
        inputs = pipe.make_inputs(np.zeros_like(f), f)
        out = resilient.execute(inputs)
        assert np.isfinite(out[pipe.output.name]).all()
        assert resilient.ladder.active() == "polymg-native"
        assert resilient.faulted

    def test_verify_failure_evicts_the_cached_compile(self, pipe, f):
        """A statically-bad artifact must never be re-served: its cache
        entry is evicted and the post-cooldown probe compiles fresh."""
        from repro.cache import compile_cache

        resilient = ResilientPipeline(
            pipe,
            DegradationLadder(clock=TickingClock(), base_cooldown=2.0),
            config_overrides=OVERRIDES,
        )
        bad = resilient.compiled_for("polymg-driver")
        inject_ghost_shrink(bad)
        evictions_before = compile_cache().stats.evictions

        inputs = pipe.make_inputs(np.zeros_like(f), f)
        name, out, error = resilient.attempt(inputs)
        assert name == "polymg-driver" and out is None
        assert compile_cache().stats.evictions == evictions_before + 1

        # next attempt serves the healthy rung below while the tripped
        # circuit cools down
        name, out, error = resilient.attempt(inputs)
        assert name == "polymg-native" and error is None

        # cooldown expires (ticking clock): the probe gets a *fresh*
        # compile, which verifies clean and serves
        name, out, error = resilient.attempt(inputs)
        assert name == "polymg-driver"
        assert error is None and out is not None
        assert resilient.compiled_for("polymg-driver") is not bad

    def test_runtime_fault_keeps_the_executor_for_the_probe(
        self, pipe, f
    ):
        """Runtime faults keep the memoized executor, so a persistent
        executor-level fault re-fires on the probe and escalates the
        cooldown instead of silently healing."""
        resilient = ResilientPipeline(
            pipe,
            DegradationLadder(clock=TickingClock(), base_cooldown=2.0),
            config_overrides=OVERRIDES,
        )
        bad = resilient.compiled_for("polymg-driver")
        inject_nan_poison(bad)
        inputs = pipe.make_inputs(np.zeros_like(f), f)
        resilient.attempt(inputs)  # fault, trip
        name, out, error = resilient.attempt(inputs)  # cooling down
        assert name == "polymg-native" and error is None
        name, out, error = resilient.attempt(inputs)  # probe
        assert name == "polymg-driver"
        assert error is not None  # same armed executor re-fired
        assert resilient.ladder.health["polymg-driver"].cooldown == 4.0

    def test_demotion_trims_the_rung_pool(self, pipe, f):
        # the driver/native rungs execute in C and never touch the
        # numpy arena, so exercise the pool-trim path on the numpy
        # rungs below them
        resilient = ResilientPipeline(
            pipe,
            DegradationLadder(
                clock=TickingClock(),
                base_cooldown=1000.0,
                variants=LADDER_ORDER[2:],
            ),
            config_overrides=OVERRIDES,
        )
        compiled = resilient.compiled_for("polymg-opt+")
        inputs = pipe.make_inputs(np.zeros_like(f), f)
        name, out, error = resilient.attempt(inputs)
        assert error is None
        assert compiled.allocator.stats.resident_bytes > 0

        inject_nan_poison(compiled)
        resilient.attempt(inputs)
        assert compiled.allocator.stats.resident_bytes == 0
        assert compiled.allocator.stats.trimmed_bytes > 0


class TestSolveSupervisedEntryPoint:
    def test_one_shot_wrapper(self, pipe, f):
        result = solve_supervised(
            pipe, f, cycles=25, tol=1e-5,
            config_overrides=OVERRIDES,
        )
        assert result.converged
        assert result.variant_trail[-1] == "polymg-driver"

    def test_reusing_a_supervisor_persists_ladder_health(self, pipe, f):
        """Service semantics: a variant demoted in one solve is still
        in cooldown for the next solve on the same supervisor."""
        sup = make_supervisor(pipe, base_cooldown=10_000.0)
        inject_nan_poison(sup.resilient.compiled_for("polymg-driver"))
        first = solve_supervised(pipe, f, supervisor=sup)
        assert first.health["polymg-driver"]["state"] == "open"

        second = solve_supervised(pipe, f, supervisor=sup)
        assert "polymg-driver" not in second.variant_trail
        assert second.health["polymg-driver"]["state"] == "open"
