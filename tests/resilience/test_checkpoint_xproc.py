"""Cross-process checkpoint/resume: serialize, reload, resume, match.

The drain/recovery story only holds if a checkpoint written by one
interpreter resumes *exactly* in another: same iterate, same residual
trajectory, same final answer as a solve that was never interrupted.
The planned numpy backend is bitwise deterministic, so the assertion
here is exact equality, not a tolerance.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.multigrid.cycles import build_poisson_cycle
from repro.resilience import (
    DegradationLadder,
    SolveCheckpoint,
    SolveSupervisor,
    SupervisorPolicy,
)

from ..conftest import make_rhs, small_opts

N = 16
TOTAL_CYCLES = 8
INTERRUPT_AT = 3
LADDER = ("polymg-opt+", "polymg-naive")
OVERRIDES = {"tile_sizes": {2: (8, 16)}}

# Resumes the checkpoint in a pristine interpreter (fresh module state,
# cold caches) and reports the final state as JSON on stdout.
_RESUMER = """
import hashlib, json, sys
import numpy as np
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.resilience import (
    DegradationLadder, SolveCheckpoint, SolveSupervisor, SupervisorPolicy,
)

ckpt_path, total_cycles = sys.argv[1], int(sys.argv[2])
checkpoint, f, meta = SolveCheckpoint.load(ckpt_path)
pipe = build_poisson_cycle(
    int(meta["ndim"]), int(meta["N"]), MultigridOptions(**meta["opts"])
)
supervisor = SolveSupervisor(
    pipe,
    SupervisorPolicy(max_cycles=total_cycles),
    ladder=DegradationLadder(%(ladder)r),
    config_overrides=%(overrides)r,
)
result = supervisor.solve(f, resume_from=checkpoint)
print(json.dumps({
    "status": result.status,
    "cycles": result.cycles,
    "norms": result.residual_norms,
    "u_sha": hashlib.sha256(np.ascontiguousarray(result.u)).hexdigest(),
}))
""" % {"ladder": LADDER, "overrides": OVERRIDES}


def _supervisor():
    pipe = build_poisson_cycle(2, N, small_opts())
    return SolveSupervisor(
        pipe,
        SupervisorPolicy(max_cycles=TOTAL_CYCLES),
        ladder=DegradationLadder(LADDER),
        config_overrides=OVERRIDES,
    )


def test_resume_in_fresh_interpreter_matches_uninterrupted(
    rng, tmp_path
):
    f = make_rhs(rng, 2, N)

    # the uninterrupted reference trajectory
    reference = _supervisor().solve(f)
    assert reference.cycles == TOTAL_CYCLES

    # the interrupted run: stop cleanly at a cycle boundary
    calls = {"n": 0}

    def stop_after_interrupt():
        calls["n"] += 1
        return calls["n"] > INTERRUPT_AT

    interrupted = _supervisor().solve(f, should_stop=stop_after_interrupt)
    assert interrupted.status == "preempted"
    assert interrupted.checkpoint is not None
    assert interrupted.checkpoint.cycle == INTERRUPT_AT

    ckpt_path = tmp_path / "solve.ckpt.npz"
    interrupted.checkpoint.save(
        ckpt_path,
        f=f,
        meta={
            "ndim": 2,
            "N": N,
            "opts": {
                "cycle": "V",
                "n1": 2,
                "n2": 2,
                "n3": 2,
                "levels": 3,
                "omega": small_opts().omega,
            },
        },
    )

    proc = subprocess.run(
        [sys.executable, "-c", _RESUMER, str(ckpt_path), str(TOTAL_CYCLES)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert proc.returncode == 0, proc.stderr
    resumed = json.loads(proc.stdout)

    # identical trajectory and identical final iterate, bit for bit
    assert resumed["status"] == reference.status
    assert resumed["cycles"] == reference.cycles
    np.testing.assert_array_equal(
        np.asarray(resumed["norms"]),
        np.asarray(reference.residual_norms),
    )
    ref_sha = hashlib.sha256(
        np.ascontiguousarray(reference.u)
    ).hexdigest()
    assert resumed["u_sha"] == ref_sha


def test_checkpoint_save_load_round_trip(rng, tmp_path):
    u = rng.standard_normal((N + 2, N + 2))
    f = make_rhs(rng, 2, N)
    checkpoint = SolveCheckpoint(
        u, 5, [3.0, 2.0, 1.0], "polymg-opt+"
    )
    path = checkpoint.save(
        tmp_path / "rt.ckpt.npz", f=f, meta={"tenant": "t"}
    )
    loaded, loaded_f, meta = SolveCheckpoint.load(path)
    np.testing.assert_array_equal(loaded.u, u)
    np.testing.assert_array_equal(loaded_f, f)
    assert loaded.cycle == 5
    assert loaded.residual_norms == [3.0, 2.0, 1.0]
    assert loaded.variant == "polymg-opt+"
    assert meta == {"tenant": "t"}


def test_checkpoint_save_is_atomic(rng, tmp_path):
    checkpoint = SolveCheckpoint(
        np.zeros((4, 4)), 0, [1.0], None
    )
    path = checkpoint.save(tmp_path / "nested" / "dir" / "a.npz")
    assert path.is_file()
    # no temp staging files left behind
    leftovers = [
        p for p in path.parent.iterdir() if p.name.startswith(".")
    ]
    assert leftovers == []


def _env_with_src():
    import os

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env
