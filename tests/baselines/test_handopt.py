"""Tests for the hand-optimized baselines."""

import numpy as np
import pytest

from repro.baselines import HandOptPlutoSolver, HandOptSolver
from repro.multigrid.reference import (
    MultigridOptions,
    reference_cycle,
    solve,
)
from tests.conftest import make_rhs

CASES = [
    (2, 32, "V", (4, 4, 4), 4),
    (2, 32, "W", (4, 4, 4), 4),
    (2, 32, "V", (10, 0, 0), 4),
    (3, 16, "V", (4, 4, 4), 3),
    (3, 16, "W", (2, 2, 2), 3),
]


@pytest.mark.parametrize("ndim,n,cycle,smoothing,levels", CASES)
def test_handopt_bitexact_vs_reference(rng, ndim, n, cycle, smoothing, levels):
    opts = MultigridOptions(
        cycle=cycle,
        n1=smoothing[0],
        n2=smoothing[1],
        n3=smoothing[2],
        levels=levels,
    )
    f = make_rhs(rng, ndim, n)
    u = np.zeros_like(f)
    ref = reference_cycle(u, f, 1.0 / (n + 1), opts)
    assert np.array_equal(HandOptSolver(ndim, n, opts).cycle(u, f), ref)


@pytest.mark.parametrize("ndim,n,cycle,smoothing,levels", CASES)
def test_handopt_pluto_bitexact(rng, ndim, n, cycle, smoothing, levels):
    opts = MultigridOptions(
        cycle=cycle,
        n1=smoothing[0],
        n2=smoothing[1],
        n3=smoothing[2],
        levels=levels,
    )
    f = make_rhs(rng, ndim, n)
    u = np.zeros_like(f)
    ref = reference_cycle(u, f, 1.0 / (n + 1), opts)
    out = HandOptPlutoSolver(ndim, n, opts).cycle(u, f)
    assert np.array_equal(out, ref)


def test_diamond_width_override(rng):
    opts = MultigridOptions(cycle="V", n1=6, n2=2, n3=6, levels=3)
    n = 32
    f = make_rhs(rng, 2, n)
    u = np.zeros_like(f)
    ref = reference_cycle(u, f, 1.0 / (n + 1), opts)
    for width in (4, 8, 16):
        out = HandOptPlutoSolver(2, n, opts, diamond_width=width).cycle(u, f)
        assert np.array_equal(out, ref), f"width={width}"


def test_preallocated_pool_is_stable(rng):
    """handopt never allocates after construction: repeated cycles keep
    using the same level buffers."""
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    n = 16
    solver = HandOptSolver(2, n, opts)
    before = [id(b) for lv in solver.levels for b in lv.u]
    f = make_rhs(rng, 2, n)
    u = np.zeros_like(f)
    for _ in range(3):
        u = solver.cycle(u, f)
    after = [id(b) for lv in solver.levels for b in lv.u]
    assert before == after


def test_modulo_buffer_count(rng):
    opts = MultigridOptions(cycle="V", n1=10, n2=10, n3=10, levels=4)
    solver = HandOptSolver(2, 32, opts)
    # exactly two smoothing buffers per level regardless of step count
    for lv in solver.levels:
        assert len(lv.u) == 2


def test_solver_driver_matches_reference_solve(rng):
    opts = MultigridOptions(cycle="V", n1=3, n2=3, n3=3, levels=4)
    n = 32
    f = make_rhs(rng, 2, n)
    ref = solve(f, opts, cycles=4)
    got = HandOptSolver(2, n, opts).solve(f, cycles=4)
    assert np.array_equal(got.u, ref.u)
    assert got.residual_norms == ref.residual_norms


def test_size_validation():
    with pytest.raises(ValueError):
        HandOptSolver(2, 30, MultigridOptions(levels=5))
