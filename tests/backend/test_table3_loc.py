"""Golden Table-3 parity: pinned generated-LoC counts.

Table 3 of the paper reports generated lines of code per workload as
an artifact metric; `benchmarks/bench_table3_characteristics.py`
reproduces it from :func:`repro.backend.codegen_c.generated_loc`.
Emitter refactors (like the PR-5 native ABI work) must not silently
drift that metric, so this test pins the counts for every
`bench/workloads.py` pipeline at the three polymg variants.

If an emitter change is *intentional*, regenerate the table below::

    PYTHONPATH=src python -m pytest tests/backend/test_table3_loc.py \
        --no-header -q  # failures print expected vs actual per cell

LoC is class-invariant (the emitted line count does not depend on the
bound grid size N, only on the schedule), verified by a dedicated
test, so the golden values are computed at laptop class where
compilation is fast.
"""

from __future__ import annotations

import pytest

from repro.backend.codegen_c import generated_loc
from repro.bench.workloads import NAS_WORKLOADS, POISSON_WORKLOADS
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.variants import polymg_naive, polymg_opt, polymg_opt_plus

VARIANTS = (polymg_naive, polymg_opt, polymg_opt_plus)

#: workload -> (naive, opt, opt+) generated LoC at laptop class
GOLDEN_LOC = {
    "V-2D-4-4-4": (688, 1207, 1181),
    "V-2D-10-0-0": (694, 1190, 1155),
    "W-2D-4-4-4": (1648, 2949, 2834),
    "W-2D-10-0-0": (1512, 2575, 2465),
    "V-3D-4-4-4": (804, 1564, 1534),
    "V-3D-10-0-0": (810, 1562, 1533),
    "W-3D-4-4-4": (1932, 3913, 3801),
    "W-3D-10-0-0": (1776, 3393, 3288),
    "NAS-MG": (444, 854, 850),
}


def _pipeline(name: str):
    if name == "NAS-MG":
        n, _iters, levels = NAS_WORKLOADS["laptop"]
        return build_nas_mg_cycle(n, levels=levels)
    for w in POISSON_WORKLOADS:
        if w.name == name:
            return w.pipeline("laptop")
    raise KeyError(name)


def test_golden_table_covers_every_workload():
    names = {w.name for w in POISSON_WORKLOADS} | {"NAS-MG"}
    assert set(GOLDEN_LOC) == names


@pytest.mark.parametrize("name", sorted(GOLDEN_LOC))
def test_generated_loc_matches_golden(name):
    pipe = _pipeline(name)
    actual = tuple(
        generated_loc(pipe.compile(variant())) for variant in VARIANTS
    )
    assert actual == GOLDEN_LOC[name], (
        f"{name}: generated LoC drifted (naive, opt, opt+): "
        f"expected {GOLDEN_LOC[name]}, got {actual} — if intentional, "
        "update GOLDEN_LOC in this file"
    )


def test_loc_is_class_invariant():
    # the pinned values are computed at laptop class; assert the
    # metric would be identical at the paper's class-B sizes (the
    # emitted line count depends on the schedule, not the bound N)
    w = POISSON_WORKLOADS[0]
    small = w.pipeline("laptop")
    # rebind the same schedule at a different N without a full class-B
    # compile (class-B plan-time sample runs take minutes)
    big = w.pipeline("B")
    cfg = polymg_opt()
    assert generated_loc(
        small.compile(cfg)
    ) == generated_loc_for_schedule_only(big, cfg)


def generated_loc_for_schedule_only(pipe, cfg):
    """LoC of ``pipe`` compiled with plan-time execution disabled (the
    kernel plan does not affect the C emitter)."""
    from dataclasses import replace

    return generated_loc(pipe.compile(replace(cfg, kernel_plan=False)))
