"""Property-based fuzzing of the whole compiler.

Generates random stencil pipelines — random chain/diamond DAG shapes,
random weight matrices and offsets, random piecewise boundary handling,
optional restriction/interpolation stages — and asserts that the fully
optimized schedule (fusion + overlapped tiling + all storage reuse)
computes bit-identical results to unoptimized stage-by-stage execution,
with the ahead-of-time kernel planner both on and off (so planned op
tapes are proven bitwise-equal to the tree-walking interpreter on the
same random DAGs).

This is the reproduction's strongest correctness net: any bug in
footprint propagation, ownership regions, scratch remapping, or array
lifetime planning surfaces as a numeric mismatch on some random DAG.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_pipeline
from repro.lang.expr import Case
from repro.lang.function import Function, Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.sampling import Restrict
from repro.lang.stencil import Stencil
from repro.lang.types import Double, Int
from repro.variants import polymg_naive, polymg_opt_plus

N_VAL = 24


def weights_strategy():
    w = st.integers(-3, 3)

    @st.composite
    def rect(draw):
        rows = draw(st.integers(1, 3))
        cols = draw(st.integers(1, 3))
        return [
            [draw(w) for _ in range(cols)] for _ in range(rows)
        ]

    return rect()


@st.composite
def pipelines(draw):
    """A random feed-forward stencil pipeline over one input grid."""
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    interior = (y >= 1) & (y <= n) & (x >= 1) & (x <= n)

    stages = [g]
    n_stages = draw(st.integers(2, 6))
    for i in range(n_stages):
        # read one or two earlier stages
        src_a = stages[draw(st.integers(0, len(stages) - 1))]
        src_b = stages[draw(st.integers(0, len(stages) - 1))]
        wa = draw(weights_strategy())
        expr = Stencil(src_a, (y, x), wa, draw(st.floats(0.1, 1.0)))
        if draw(st.booleans()):
            expr = expr + src_b(y, x) * draw(st.floats(-1.0, 1.0))
        f = Function(([y, x], [ext, ext]), Double, f"s{i}")
        if draw(st.booleans()):
            f.defn = [Case(interior, expr), src_a(y, x)]
        else:
            f.defn = [Case(interior, expr), 0.0]
        stages.append(f)

    # optionally end with a restriction stage
    if draw(st.booleans()):
        r = Restrict(
            ([y, x], [Interval(Int, 1, n / 2), Interval(Int, 1, n / 2)]),
            Double,
            "rfin",
        )
        r.defn = [
            Stencil(
                stages[-1],
                (y, x),
                [[1, 2, 1], [2, 4, 2], [1, 2, 1]],
                1.0 / 16,
            )
        ]
        stages.append(r)
    return stages[-1]


@pytest.mark.parametrize("kernel_plan", [False, True])
@settings(max_examples=25, deadline=None)
@given(pipelines(), st.sampled_from([(4, 8), (8, 8), (6, 10)]),
       st.integers(2, 5))
def test_optimized_equals_naive_on_random_pipelines(
    kernel_plan, out_fn, tiles, group_limit
):
    rng = np.random.default_rng(99)
    data = rng.standard_normal((N_VAL + 2, N_VAL + 2))
    inputs = {"G": data}

    # the reference is always the unplanned naive interpreter, so with
    # kernel_plan=True this asserts planned-tape output is bitwise
    # identical to tree-walking execution
    naive = compile_pipeline(
        out_fn, {"N": N_VAL}, polymg_naive(kernel_plan=False)
    )
    expected = naive.execute(inputs)[out_fn.name]

    cfg = polymg_opt_plus(
        tile_sizes={2: tiles},
        group_size_limit=group_limit,
        overlap_threshold=2.0,
        kernel_plan=kernel_plan,
    )
    optimized = compile_pipeline(out_fn, {"N": N_VAL}, cfg)
    if kernel_plan:
        assert optimized._kernel_plan is not None
    got = optimized.execute(inputs)[out_fn.name]
    assert np.array_equal(got, expected)


@settings(max_examples=10, deadline=None)
@given(pipelines())
def test_report_consistent_on_random_pipelines(out_fn):
    cfg = polymg_opt_plus(tile_sizes={2: (8, 8)}, overlap_threshold=2.0)
    compiled = compile_pipeline(out_fn, {"N": N_VAL}, cfg)
    report = compiled.artifact_summary()
    assert report["group_count"] >= 1
    assert sum(len(g["stages"]) for g in report["groups"]) == (
        report["stage_count"]
    )
    compiled.grouping.validate()
