"""Crash/hang isolation for the native tier.

The sandbox (``repro.backend.sandbox``) runs native kernels in
disposable subprocess executors so a segfaulting, aborting, or
spinning shared object can never take the parent process down.  These
tests pin the contract end to end: out-of-process parity with the
in-process runner, typed classification of every death
(``NativeCrashError`` / ``NativeAbortError`` / ``NativeHangError``),
worker respawn, on-disk artifact quarantine (including across a
process restart), and the crash-isolated incident/breaker plumbing
through the resilience layer.  The fault injectors compile a real
wild store / ``abort()`` / infinite loop into the emitted C
(``PolyMgConfig.native_fault``), so what is being contained is a
genuine native crash, not a simulation.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.backend.native import (
    build_native_runner,
    discover_compiler,
    native_isolation_mode,
)
from repro.backend.registry import DRIVER, NATIVE, PLANNED, Backend
from repro.backend.sandbox import (
    SandboxRunner,
    reset_sandbox_pool,
    sandbox_state,
)
from repro.cache import native_artifact_store, quarantine_threshold
from repro.compiler import compile_pipeline
from repro.errors import (
    CompileError,
    NativeAbortError,
    NativeCrashError,
    NativeHangError,
    NativeQuarantinedError,
)
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_driver, polymg_native, polymg_opt_plus
from repro.verify.faults import (
    NATIVE_FAULT_INJECTORS,
    inject_native_abort,
    inject_native_segfault,
    inject_native_spin,
)

HAVE_CC = discover_compiler() is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason="no C toolchain on PATH (cc/gcc/clang)"
)

N = 16
TILES = {2: (8, 16)}


@pytest.fixture(autouse=True)
def _sandbox_env(tmp_path, monkeypatch):
    """Every test gets a private artifact store (quarantine verdicts
    are durable on purpose) and a single-worker pool with a short
    watchdog deadline; the pool singleton is torn down afterwards."""
    monkeypatch.setenv(
        "REPRO_NATIVE_CACHE_DIR", str(tmp_path / "artifacts")
    )
    monkeypatch.setenv("REPRO_SANDBOX_WORKERS", "1")
    monkeypatch.setenv("REPRO_SANDBOX_TIMEOUT", "2")
    monkeypatch.setenv("REPRO_SANDBOX_HEARTBEAT", "0.05")
    monkeypatch.delenv("REPRO_NATIVE_ISOLATION", raising=False)
    reset_sandbox_pool()
    yield
    reset_sandbox_pool()


def _pipe():
    return build_poisson_cycle(
        2, N, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    )


def _inputs(pipe):
    rng = np.random.default_rng(20170712)
    shape = (N + 2, N + 2)
    return pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )


def _reference(pipe, inputs):
    planned = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_opt_plus(tile_sizes=dict(TILES), num_threads=1),
        name=pipe.name,
        cache=False,
    )
    return planned.execute(dict(inputs))[pipe.output.name]


def _compile_native(pipe, **overrides):
    overrides.setdefault("native_isolation", "sandbox")
    cfg = polymg_native(
        tile_sizes=dict(TILES), num_threads=1, **overrides
    )
    return compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )


# ---------------------------------------------------------------------------
# config and routing (no toolchain required)
# ---------------------------------------------------------------------------


class TestConfigSurface:
    def test_unknown_isolation_mode_is_rejected(self):
        with pytest.raises(CompileError):
            polymg_native(native_isolation="chroot")

    def test_unknown_native_fault_is_rejected(self):
        with pytest.raises(CompileError):
            polymg_native(native_fault="bus-error")

    def test_native_fault_enters_the_fingerprint(self):
        healthy = polymg_native(tile_sizes=dict(TILES))
        faulted, record = inject_native_segfault(healthy)
        assert record.kind == "native-segfault"
        assert healthy.fingerprint() != faulted.fingerprint()

    def test_injector_registry_covers_every_fault_class(self):
        cfg = polymg_native(tile_sizes=dict(TILES))
        kinds = set()
        for injector in (
            inject_native_segfault,
            inject_native_spin,
            inject_native_abort,
        ):
            faulted, record = injector(cfg)
            kinds.add(faulted.native_fault)
            assert NATIVE_FAULT_INJECTORS[record.kind] is injector
        assert kinds == {"segfault", "spin", "abort"}

    def test_env_var_overrides_config_isolation(self, monkeypatch):
        sandboxed = polymg_native(native_isolation="sandbox")
        plain = polymg_native()
        assert native_isolation_mode(sandboxed) == "sandbox"
        assert native_isolation_mode(plain) == "none"
        monkeypatch.setenv("REPRO_NATIVE_ISOLATION", "none")
        assert native_isolation_mode(sandboxed) == "none"
        monkeypatch.setenv("REPRO_NATIVE_ISOLATION", "sandbox")
        assert native_isolation_mode(plain) == "sandbox"
        # an unknown env value is ignored, not an error
        monkeypatch.setenv("REPRO_NATIVE_ISOLATION", "bogus")
        assert native_isolation_mode(sandboxed) == "sandbox"

    def test_native_tier_advertises_crash_isolation(self):
        assert Backend.crash_isolated is False
        assert NATIVE.crash_isolated is True
        assert PLANNED.crash_isolated is False

    def test_sandbox_state_without_pool_reports_disabled(self):
        assert sandbox_state() == {"enabled": False}


class TestQuarantineStore:
    def test_record_crash_latches_at_threshold(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "2")
        store = native_artifact_store()
        assert store.record_crash("k1", "NativeCrashError") is False
        assert not store.is_quarantined("k1")
        assert store.record_crash("k1", "NativeHangError") is True
        assert store.is_quarantined("k1")
        assert store.quarantined_keys() == ["k1"]
        # latched: further crashes keep it quarantined
        assert store.record_crash("k1", "NativeAbortError") is True

    def test_get_refuses_a_quarantined_key(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "1")
        store = native_artifact_store()
        store.record_crash("k2", "NativeCrashError")
        assert store.get("k2") is None
        # refused as quarantined, not merely missed
        assert store.stats.quarantined_rejections == 1
        assert store.stats.misses == 0

    def test_verdict_survives_artifact_eviction(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "1")
        store = native_artifact_store()
        blob = tmp_path / "a.so"
        blob.write_bytes(b"x" * 256)
        store.put("k3", blob)
        store.record_crash("k3", "NativeCrashError")
        # squeeze the budget: the .so and its meta are evicted ...
        store.max_bytes = 1
        other = tmp_path / "b.so"
        other.write_bytes(b"y" * 256)
        store.put("k4", other)
        assert not (store.root / "k3.so").exists()
        # ... but the verdict sidecar (and the blacklist) survive
        assert store.is_quarantined("k3")
        assert "k3" in store.quarantined_keys()

    def test_threshold_env_knob(self, monkeypatch):
        assert quarantine_threshold() == 3
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "5")
        assert quarantine_threshold() == 5
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "0")
        assert quarantine_threshold() == 1  # clamped
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "junk")
        assert quarantine_threshold() == 3


# ---------------------------------------------------------------------------
# sandboxed execution (real compiles)
# ---------------------------------------------------------------------------


@needs_cc
class TestSandboxedExecution:
    def test_sandboxed_run_matches_reference(self):
        pipe = _pipe()
        compiled = _compile_native(pipe)
        runner = compiled.ensure_native()
        assert isinstance(runner, SandboxRunner)
        assert compiled._native_handle.info["isolation"] == "sandbox"
        inputs = _inputs(pipe)
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.allclose(
            out, _reference(pipe, inputs), rtol=1e-9, atol=1e-11
        )
        assert compiled.stats.tier(NATIVE.name).executions == 1
        assert compiled.stats.tier(NATIVE.name).fallbacks == 0
        state = sandbox_state()
        assert state["enabled"] is True
        assert state["jobs"] == 1
        assert state["alive"] == 1
        assert state["crashes"] == 0

    def test_env_override_routes_around_config(self, monkeypatch):
        pipe = _pipe()
        compiled = _compile_native(pipe, native_isolation="none")
        assert compiled.ensure_native() is not None
        monkeypatch.setenv("REPRO_NATIVE_ISOLATION", "sandbox")
        runner, info = build_native_runner(compiled)
        assert isinstance(runner, SandboxRunner)
        assert info["isolation"] == "sandbox"
        monkeypatch.setenv("REPRO_NATIVE_ISOLATION", "none")
        runner, info = build_native_runner(compiled)
        assert not isinstance(runner, SandboxRunner)
        assert info["isolation"] == "none"
        assert info["cache_hit"] is True

    @pytest.mark.parametrize(
        "fault, exc_type",
        [
            ("segfault", NativeCrashError),
            ("abort", NativeAbortError),
            ("spin", NativeHangError),
        ],
    )
    def test_fault_is_contained_classified_and_served(
        self, fault, exc_type
    ):
        pipe = _pipe()
        compiled = _compile_native(pipe, native_fault=fault)
        assert compiled.ensure_native() is not None
        inputs = _inputs(pipe)
        # the crash is contained and the execute is served correctly
        # by the fallback tier — the parent process never notices
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        assert compiled.stats.tier(NATIVE.name).executions == 0
        assert compiled.stats.tier(NATIVE.name).fallbacks >= 1
        # classification is typed and exact
        pending = compiled.consume_native_fault()
        assert type(pending) is exc_type
        assert pending.context["quarantined"] is False
        assert compiled.consume_native_fault() is None  # popped once
        # the incident names the remediation
        records = [
            r
            for r in compiled.report.incidents
            if r["kind"] == "native-fallback"
        ]
        assert len(records) == 1
        assert records[0]["action"] == "crash-isolated"
        assert records[0]["fallback"] == PLANNED.name
        # the pool accounted the death in its own ledger
        state = sandbox_state()
        counter = {
            "segfault": "crashes",
            "abort": "aborts",
            "spin": "hangs",
        }[fault]
        assert state[counter] == 1

    def test_worker_respawns_and_serves_after_a_crash(self):
        pipe = _pipe()
        inputs = _inputs(pipe)
        bad = _compile_native(pipe, native_fault="segfault")
        assert bad.ensure_native() is not None
        bad.execute(dict(inputs))  # kills the only worker
        good = _compile_native(pipe)
        assert good.ensure_native() is not None
        out = good.execute(dict(inputs))[pipe.output.name]
        assert np.allclose(
            out, _reference(pipe, inputs), rtol=1e-9, atol=1e-11
        )
        assert good.stats.tier(NATIVE.name).executions == 1
        state = sandbox_state()
        assert state["jobs"] == 2
        assert state["crashes"] == 1
        assert state["respawns"] == 1
        assert state["alive"] == 1


def _compile_driver(pipe, **overrides):
    overrides.setdefault("native_isolation", "sandbox")
    cfg = polymg_driver(
        tile_sizes=dict(TILES), num_threads=1, **overrides
    )
    return compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )


@needs_cc
class TestSandboxedDriver:
    def test_sandboxed_drive_matches_in_process(self):
        """A whole-solve burst through a sandbox worker is bitwise
        identical — norms and final iterate — to the in-process
        driver."""
        pipe = _pipe()
        boxed = _compile_driver(pipe)
        free = _compile_driver(pipe, native_isolation="none")
        assert isinstance(boxed.ensure_native(), SandboxRunner)
        assert free.ensure_native() is not None
        inputs = _inputs(pipe)
        spec = pipe.drive_spec()
        a = boxed.drive(dict(inputs), max_cycles=5, tol=0.0, spec=spec)
        b = free.drive(dict(inputs), max_cycles=5, tol=0.0, spec=spec)
        assert a is not None and b is not None
        assert a.cycles == b.cycles == 5
        assert a.norms == b.norms
        assert np.array_equal(
            a.outputs[pipe.output.name], b.outputs[pipe.output.name]
        )
        tier = boxed.stats.tier(DRIVER.name)
        assert tier.executions == 1
        assert tier.hook_returns == 1
        assert tier.cycles_in_native == 5

    def test_wedged_driver_burst_is_killed_and_latched(
        self, monkeypatch
    ):
        """A driver whose cycle counter stops advancing is killed by
        the kernel-progress watch well before the cycle-scaled
        absolute deadline, and the executor latches onto the per-cycle
        fallback with the typed hang pending for the breaker."""
        monkeypatch.setenv("REPRO_SANDBOX_CYCLE_TIMEOUT", "0.3")
        pipe = _pipe()
        compiled = _compile_driver(pipe, native_fault="spin")
        assert compiled.ensure_native() is not None
        start = time.monotonic()
        served = compiled.drive(
            dict(_inputs(pipe)),
            max_cycles=8,
            tol=0.0,
            spec=pipe.drive_spec(),
        )
        elapsed = time.monotonic() - start
        assert served is None  # burst degraded, solve continues
        assert elapsed < 8 * 0.3  # killed before the full budget
        pending = compiled.consume_native_fault()
        assert isinstance(pending, NativeHangError)
        assert pending.context["reason"] == "stalled-cycle"
        assert sandbox_state()["hangs"] == 1


class TestDriverKnobs:
    def test_affinity_env_translation(self, monkeypatch):
        from repro.backend.sandbox import _apply_affinity_env

        for mode, bind in (
            ("compact", "close"), ("scatter", "spread"),
        ):
            monkeypatch.setenv("REPRO_NATIVE_AFFINITY", mode)
            monkeypatch.delenv("OMP_PROC_BIND", raising=False)
            monkeypatch.delenv("OMP_PLACES", raising=False)
            _apply_affinity_env()
            assert os.environ["OMP_PROC_BIND"] == bind
            assert os.environ["OMP_PLACES"] == "cores"

    def test_explicit_omp_settings_win(self, monkeypatch):
        from repro.backend.sandbox import _apply_affinity_env

        monkeypatch.setenv("REPRO_NATIVE_AFFINITY", "compact")
        monkeypatch.setenv("OMP_PROC_BIND", "spread")
        monkeypatch.delenv("OMP_PLACES", raising=False)
        _apply_affinity_env()
        assert os.environ["OMP_PROC_BIND"] == "spread"

    def test_cycle_timeout_defaults_to_flat_timeout(self, monkeypatch):
        from repro.backend.sandbox import (
            sandbox_cycle_timeout,
            sandbox_timeout,
        )

        monkeypatch.delenv("REPRO_SANDBOX_CYCLE_TIMEOUT", raising=False)
        assert sandbox_cycle_timeout() == sandbox_timeout()
        monkeypatch.setenv("REPRO_SANDBOX_CYCLE_TIMEOUT", "1.5")
        assert sandbox_cycle_timeout() == 1.5


@needs_cc
class TestQuarantineEndToEnd:
    def test_repeat_offender_is_quarantined_then_refused(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "2")
        pipe = _pipe()
        inputs = _inputs(pipe)
        ref = _reference(pipe, inputs)
        store = native_artifact_store()

        first = _compile_native(pipe, native_fault="abort")
        assert first.ensure_native() is not None
        key = first._native_handle.info["key"]
        assert np.array_equal(
            first.execute(dict(inputs))[pipe.output.name], ref
        )
        assert type(first.consume_native_fault()) is NativeAbortError
        assert not store.is_quarantined(key)

        # a fresh executor happily retries the cached artifact — and
        # its crash crosses the threshold
        second = _compile_native(pipe, native_fault="abort")
        assert second.ensure_native() is not None
        assert np.array_equal(
            second.execute(dict(inputs))[pipe.output.name], ref
        )
        fault = second.consume_native_fault()
        assert fault.context["quarantined"] is True
        assert store.is_quarantined(key)

        # from now on the artifact is refused before compile or load
        third = _compile_native(pipe, native_fault="abort")
        assert third.ensure_native() is None
        assert np.array_equal(
            third.execute(dict(inputs))[pipe.output.name], ref
        )
        assert isinstance(
            third.consume_native_fault(), NativeQuarantinedError
        )
        assert sandbox_state()["quarantined"] == 1

    def test_quarantine_survives_a_process_restart(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_QUARANTINE_AFTER", "1")
        pipe = _pipe()
        compiled = _compile_native(pipe, native_fault="segfault")
        assert compiled.ensure_native() is not None
        key = compiled._native_handle.info["key"]
        compiled.execute(dict(_inputs(pipe)))  # one crash quarantines
        assert native_artifact_store().is_quarantined(key)

        # a brand-new interpreter must refuse to reload the artifact:
        # the verdict lives on disk, not in this process
        child = (
            "import sys\n"
            "from repro.cache import native_artifact_store\n"
            "from repro.compiler import compile_pipeline\n"
            "from repro.errors import NativeQuarantinedError\n"
            "from repro.backend.native import build_native_runner\n"
            "from repro.multigrid.cycles import build_poisson_cycle\n"
            "from repro.multigrid.reference import MultigridOptions\n"
            "from repro.variants import polymg_native\n"
            "key = sys.argv[1]\n"
            "store = native_artifact_store()\n"
            "assert store.is_quarantined(key), 'verdict lost'\n"
            "assert store.get(key) is None, 'artifact served'\n"
            "pipe = build_poisson_cycle(2, 16, MultigridOptions(\n"
            "    cycle='V', n1=2, n2=2, n3=2, levels=3))\n"
            "cfg = polymg_native(tile_sizes={2: (8, 16)},\n"
            "                    num_threads=1,\n"
            "                    native_isolation='sandbox',\n"
            "                    native_fault='segfault')\n"
            "c = compile_pipeline(pipe.output, pipe.params, cfg,\n"
            "                     name=pipe.name, cache=False)\n"
            "try:\n"
            "    build_native_runner(c)\n"
            "except NativeQuarantinedError:\n"
            "    print('QUARANTINE-HELD')\n"
            "else:\n"
            "    print('QUARANTINE-BYPASSED')\n"
        )
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in (src_root, env.get("PYTHONPATH"))
            if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", child, key],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "QUARANTINE-HELD" in proc.stdout


@needs_cc
class TestResilienceIntegration:
    def test_contained_crash_still_demotes_the_breaker(self):
        from repro.resilience.pipeline import ResilientPipeline

        pipe = _pipe()
        inputs = _inputs(pipe)
        rp = ResilientPipeline(
            pipe,
            config_overrides={
                "tile_sizes": dict(TILES),
                "num_threads": 1,
                "native_isolation": "sandbox",
                "native_fault": "segfault",
            },
        )
        rung = rp.ladder.select()
        compiled = rp.compiled_for(rung)
        assert compiled.ensure_native() is not None
        name, out, error = rp.attempt(dict(inputs))
        # the attempt *succeeds* (the sandbox contained the crash and
        # the fallback tier served the answer) ...
        assert error is None
        assert name == rung
        assert np.array_equal(
            out[pipe.output.name], _reference(pipe, inputs)
        )
        # ... but the crash was still reported to the breaker path
        assert rp.faulted
        faults = [r for r in rp.log.records if r.kind == "fault"]
        assert len(faults) == 1
        assert faults[0].action == "crash-isolated"
        assert faults[0].variant == rung
        assert "NativeCrashError" in faults[0].error


# ---------------------------------------------------------------------------
# parent-process survival (the headline guarantee)
# ---------------------------------------------------------------------------


@needs_cc
class TestParentSurvival:
    def test_parent_pid_is_untouched_by_native_faults(self):
        pid = os.getpid()
        pipe = _pipe()
        inputs = _inputs(pipe)
        t0 = time.monotonic()
        for fault in ("segfault", "abort"):
            compiled = _compile_native(pipe, native_fault=fault)
            assert compiled.ensure_native() is not None
            compiled.execute(dict(inputs))
        assert os.getpid() == pid  # still the same, still alive
        assert time.monotonic() - t0 < 120
        state = sandbox_state()
        assert state["crashes"] == 1 and state["aborts"] == 1
