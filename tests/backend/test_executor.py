"""Integration tests: compiled pipelines vs the reference solver.

The central correctness property of the whole compiler: every variant
(naive / opt / opt+ / dtile-opt+) executes any multigrid cycle to
*bit-identical* results, which also equal the independent reference
solver's output.
"""

import numpy as np
import pytest

from repro.multigrid import (
    MultigridOptions,
    build_poisson_cycle,
    reference_cycle,
)
from repro.variants import (
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)
from tests.conftest import make_rhs

SMALL_TILES = {1: (8,), 2: (8, 16), 3: (4, 4, 8)}


def run_cycle(pipe, cfg, v, f):
    compiled = pipe.compile(cfg)
    return compiled.execute(pipe.make_inputs(v, f))[pipe.output.name], compiled


CASES = [
    (2, 32, 4, "V", (4, 4, 4)),
    (2, 32, 4, "V", (10, 0, 0)),
    (2, 32, 4, "W", (4, 4, 4)),
    (2, 32, 4, "W", (10, 0, 0)),
    (3, 16, 3, "V", (4, 4, 4)),
    (3, 16, 3, "W", (3, 0, 0)),
]


@pytest.mark.parametrize("ndim,n,levels,cycle,smoothing", CASES)
def test_all_variants_match_reference(rng, ndim, n, levels, cycle, smoothing):
    opts = MultigridOptions(
        cycle=cycle,
        n1=smoothing[0],
        n2=smoothing[1],
        n3=smoothing[2],
        levels=levels,
    )
    f = make_rhs(rng, ndim, n)
    v = np.zeros_like(f)
    ref = reference_cycle(v, f, 1.0 / (n + 1), opts)
    pipe = build_poisson_cycle(ndim, n, opts)
    for factory in (
        polymg_naive,
        polymg_opt,
        polymg_opt_plus,
        polymg_dtile_opt_plus,
    ):
        cfg = factory(tile_sizes=SMALL_TILES)
        out, _ = run_cycle(pipe, cfg, v, f)
        assert np.array_equal(out, ref), factory.__name__


def test_repeated_cycles_converge(rng):
    opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
    n = 32
    f = make_rhs(rng, 2, n)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    from repro.multigrid.kernels import norm_residual

    u = np.zeros_like(f)
    h = 1.0 / (n + 1)
    norms = [norm_residual(u, f, h)]
    for _ in range(6):
        u = compiled.execute(pipe.make_inputs(u, f))[pipe.output.name]
        norms.append(norm_residual(u, f, h))
    # V(4,4) with a 4-sweep coarsest solve: cycle factor well below 0.5
    assert norms[-1] < 1e-3 * norms[0]
    factors = [b / a for a, b in zip(norms, norms[1:])]
    assert max(factors) < 0.65


def test_pool_reused_across_cycles(rng):
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    n = 16
    f = make_rhs(rng, 2, n)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    compiled.execute(inputs)
    fresh_after_first = compiled.allocator.stats.fresh_allocations
    compiled.execute(inputs)
    compiled.execute(inputs)
    assert compiled.allocator.stats.fresh_allocations == fresh_after_first
    assert compiled.allocator.stats.pool_hits > 0


def test_opt_allocates_every_cycle(rng):
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    n = 16
    f = make_rhs(rng, 2, n)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_opt(tile_sizes=SMALL_TILES))
    inputs = pipe.make_inputs(np.zeros_like(f), f)
    compiled.execute(inputs)
    first = compiled.allocator.stats.fresh_allocations
    compiled.execute(inputs)
    assert compiled.allocator.stats.fresh_allocations == 2 * first


def test_redundancy_reported(rng):
    opts = MultigridOptions(cycle="V", n1=4, n2=2, n3=4, levels=3)
    n = 32
    f = make_rhs(rng, 2, n)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes={2: (8, 8)}))
    compiled.execute(pipe.make_inputs(np.zeros_like(f), f))
    # overlapped tiling computes redundant points
    assert compiled.stats.redundancy() > 0.0
    naive = pipe.compile(polymg_naive())
    naive.execute(pipe.make_inputs(np.zeros_like(f), f))
    assert naive.stats.redundancy() == 0.0


def test_missing_input_rejected(rng):
    opts = MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
    pipe = build_poisson_cycle(2, 8, opts)
    compiled = pipe.compile(polymg_naive())
    with pytest.raises(KeyError):
        compiled.execute({"V": np.zeros((10, 10))})


def test_wrong_shape_rejected(rng):
    opts = MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
    pipe = build_poisson_cycle(2, 8, opts)
    compiled = pipe.compile(polymg_naive())
    inputs = pipe.make_inputs(np.zeros((10, 10)), np.zeros((10, 10)))
    inputs["F"] = np.zeros((12, 12))
    with pytest.raises(ValueError):
        compiled.execute(inputs)


def test_diamond_segments_executed(rng):
    opts = MultigridOptions(cycle="V", n1=4, n2=0, n3=4, levels=2)
    n = 32
    f = make_rhs(rng, 2, n)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_dtile_opt_plus(tile_sizes=SMALL_TILES))
    compiled.execute(pipe.make_inputs(np.zeros_like(f), f))
    assert compiled.stats.diamond_segments > 0
    assert compiled.stats.copy_bytes > 0  # conservative-copy issue modeled


def test_report_structure(rng):
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    pipe = build_poisson_cycle(2, 32, opts)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    report = compiled.artifact_summary()
    assert report["stage_count"] == compiled.dag.stage_count()
    assert report["group_count"] == len(report["groups"])
    assert report["full_arrays"] <= report["full_arrays_without_reuse"]
    assert report["scratch_bytes"] <= report["scratch_bytes_without_reuse"]
    for g in report["groups"]:
        assert set(g) >= {"stages", "anchor", "live_outs", "tiled"}


def test_tile_sizes_change_nothing_numerically(rng):
    opts = MultigridOptions(cycle="W", n1=3, n2=1, n3=2, levels=3)
    n = 32
    f = make_rhs(rng, 2, n)
    v = np.zeros_like(f)
    pipe = build_poisson_cycle(2, n, opts)
    outs = []
    for tiles in [{2: (4, 4)}, {2: (8, 32)}, {2: (32, 32)}]:
        out, _ = run_cycle(pipe, polymg_opt_plus(tile_sizes=tiles), v, f)
        outs.append(out)
    assert np.array_equal(outs[0], outs[1])
    assert np.array_equal(outs[1], outs[2])


def test_threaded_execution_matches_sequential(rng):
    """num_threads > 1 runs tiles on a thread pool; results must be
    bit-identical to sequential execution (tiles are independent)."""
    opts = MultigridOptions(cycle="V", n1=4, n2=2, n3=4, levels=3)
    n = 32
    f = make_rhs(rng, 2, n)
    v = np.zeros_like(f)
    pipe = build_poisson_cycle(2, n, opts)
    seq, _ = run_cycle(pipe, polymg_opt_plus(tile_sizes=SMALL_TILES), v, f)
    par, compiled = run_cycle(
        pipe,
        polymg_opt_plus(tile_sizes=SMALL_TILES, num_threads=4),
        v,
        f,
    )
    assert np.array_equal(seq, par)
    assert compiled.stats.tiles_executed > 1
