"""Tests for vectorized stage evaluation."""

import numpy as np
import pytest

from repro.ir.domain import Box
from repro.lang.expr import Call, Case, Maximum, Minimum, Select, VarExpr
from repro.lang.function import Function, Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.sampling import Interp
from repro.lang.stencil import Stencil
from repro.lang.types import Double, Int
from repro.backend.evaluate import condition_mask, eval_expr, evaluate_stage


@pytest.fixture
def env():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    return n, y, x, g, ext


def make_reader(arrays):
    def read(func, box):
        arr = arrays[func.name]
        return arr[box.slices(origin=(0,) * box.ndim)]

    return read


N = 8
BINDINGS = {"N": N}


def full_box():
    return Box.from_bounds([(0, N + 1), (0, N + 1)])


class TestEvalExpr:
    def _eval(self, env, expr, data):
        n, y, x, g, ext = env
        reader = make_reader({"G": data})
        return eval_expr(expr, full_box(), (y, x), reader, BINDINGS)

    def test_constant(self, env):
        assert self._eval(env, __import__("repro.lang.expr", fromlist=["Const"]).Const(3.5), None) == 3.5

    def test_pointwise_ref(self, env, rng):
        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        out = self._eval(env, g(y, x) * 2.0, data)
        assert np.array_equal(out, data * 2.0)

    def test_shifted_ref_inner_box(self, env, rng):
        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        box = Box.from_bounds([(1, N), (1, N)])
        reader = make_reader({"G": data})
        out = eval_expr(g(y - 1, x + 1), box, (y, x), reader, BINDINGS)
        assert np.array_equal(out, data[0:N, 2 : N + 2])

    def test_transposed_ref(self, env, rng):
        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        out = self._eval(env, g(x, y), data)
        assert np.array_equal(out, data.T)

    def test_strided_ref(self, env, rng):
        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        box = Box.from_bounds([(1, 4), (1, 4)])
        reader = make_reader({"G": data})
        out = eval_expr(g(2 * y, 2 * x - 1), box, (y, x), reader, BINDINGS)
        assert np.array_equal(out, data[2:9:2, 1:8:2])

    def test_constant_subscript_broadcast(self, env, rng):
        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        out = self._eval(env, g(0, x), data)
        # result is broadcastable to the box shape (size-1 leading axis)
        full = np.broadcast_to(out, (N + 2, N + 2))
        expected = np.broadcast_to(data[0, :], (N + 2, N + 2))
        assert np.array_equal(full, expected)

    def test_var_expr_grid(self, env):
        n, y, x, g, ext = env
        out = self._eval(env, VarExpr((2 * y + 1) + 0), None)
        assert out.shape == (N + 2, 1)
        assert out[3, 0] == 7

    def test_min_max_call_select(self, env, rng):
        n, y, x, g, ext = env
        data = np.abs(rng.standard_normal((N + 2, N + 2))) + 1.0
        expr = Select(
            (y >= 1) & (y <= n),
            Call("sqrt", Minimum(g(y, x), Maximum(g(y, x), 2.0))),
            0.0,
        )
        out = self._eval(env, expr, data)
        inner = np.sqrt(np.minimum(data, np.maximum(data, 2.0)))
        assert np.array_equal(out[1 : N + 1], inner[1 : N + 1])
        assert np.all(out[0] == 0.0) and np.all(out[-1] == 0.0)

    def test_fractional_coeff_rejected(self, env, rng):
        from fractions import Fraction

        n, y, x, g, ext = env
        data = rng.standard_normal((N + 2, N + 2))
        box = Box.from_bounds([(0, 3), (0, 3)])
        reader = make_reader({"G": data})
        with pytest.raises(ValueError):
            eval_expr(
                g(y * Fraction(1, 2), x), box, (y, x), reader, BINDINGS
            )


class TestEvaluateStage:
    def test_piecewise_if_elif_else(self, env, rng):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "pw")
        f.defn = [
            Case(y.equals(0), 7.0),
            Case((x >= 1) & (x <= n), g(y, x) + 1.0),
            -1.0,
        ]
        data = rng.standard_normal((N + 2, N + 2))
        out = np.full((N + 2, N + 2), np.nan)
        pts = evaluate_stage(
            f,
            full_box(),
            make_reader({"G": data}),
            out,
            (0, 0),
            BINDINGS,
        )
        assert pts == (N + 2) ** 2
        assert np.all(out[0] == 7.0)
        assert np.array_equal(out[1:, 1 : N + 1], data[1:, 1 : N + 1] + 1.0)
        assert np.all(out[1:, 0] == -1.0) and np.all(out[1:, -1] == -1.0)

    def test_partial_region(self, env, rng):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "p")
        f.defn = [g(y, x) * 3.0]
        data = rng.standard_normal((N + 2, N + 2))
        out = np.zeros((4, 5))
        region = Box.from_bounds([(2, 5), (3, 7)])
        evaluate_stage(
            f, region, make_reader({"G": data}), out, (2, 3), BINDINGS
        )
        assert np.array_equal(out, data[2:6, 3:8] * 3.0)

    def test_empty_region(self, env):
        n, y, x, g, ext = env
        f = Function(([y, x], [ext, ext]), Double, "e")
        f.defn = [g(y, x)]
        out = np.zeros((2, 2))
        pts = evaluate_stage(
            f,
            Box.from_bounds([(3, 2), (0, 1)]),
            make_reader({}),
            out,
            (0, 0),
            BINDINGS,
        )
        assert pts == 0

    def test_interp_parity(self, env, rng):
        n, y, x, g, ext = env
        nc = N // 2
        coarse = Grid(Double, "C", [n / 2 + 2, n / 2 + 2])
        p = Interp(
            ([y, x], [Interval(Int, 1, n), Interval(Int, 1, n)]),
            Double,
            "P",
        )
        o = (0, 0)
        table = [
            {
                0: Stencil(coarse, (y, x), [1], origin=o),
                1: Stencil(coarse, (y, x), [1, 1], origin=o) * 0.5,
            },
            {
                0: Stencil(coarse, (y, x), [[1], [1]], origin=o) * 0.5,
                1: Stencil(coarse, (y, x), [[1, 1], [1, 1]], origin=o)
                * 0.25,
            },
        ]
        p.defn = [table]
        cdata = np.zeros((nc + 2, nc + 2))
        cdata[1:-1, 1:-1] = rng.standard_normal((nc, nc))
        out = np.full((N, N), np.nan)
        region = Box.from_bounds([(1, N), (1, N)])
        evaluate_stage(
            p, region, make_reader({"C": cdata}), out, (1, 1), BINDINGS
        )
        from repro.multigrid.kernels import interpolate

        expected = interpolate(cdata[1:-1, 1:-1], N)
        assert np.array_equal(out, expected)


class TestConditionMask:
    def test_mask_shapes(self, env):
        n, y, x, g, ext = env
        box = Box.from_bounds([(0, 3), (0, 4)])
        mask = condition_mask((y >= 1) & (x <= 2), box, (y, x), BINDINGS)
        assert mask.shape == (4, 5)
        assert mask[0].sum() == 0
        assert mask[1].sum() == 3
