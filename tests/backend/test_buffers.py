"""Tests for the pooled memory allocator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backend.buffers import DirectAllocator, MemoryPool


class TestMemoryPool:
    def test_fresh_then_reuse(self):
        pool = MemoryPool()
        a = pool.allocate((8, 8), np.float64)
        assert pool.stats.fresh_allocations == 1
        pool.deallocate(a)
        b = pool.allocate((8, 8), np.float64)
        assert pool.stats.pool_hits == 1
        assert pool.stats.fresh_allocations == 1

    def test_bigger_buffer_serves_smaller_request(self):
        pool = MemoryPool()
        big = pool.allocate((100,), np.float64)
        pool.deallocate(big)
        small = pool.allocate((10,), np.float64)
        assert pool.stats.pool_hits == 1
        assert small.shape == (10,)

    def test_smaller_buffer_cannot_serve_bigger(self):
        pool = MemoryPool()
        small = pool.allocate((10,), np.float64)
        pool.deallocate(small)
        big = pool.allocate((100,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_best_fit_choice(self):
        pool = MemoryPool()
        a = pool.allocate((100,), np.float64)
        b = pool.allocate((20,), np.float64)
        pool.deallocate(a)
        pool.deallocate(b)
        c = pool.allocate((15,), np.float64)
        pool.deallocate(c)
        # c should have reused the 20-element buffer (best fit), so the
        # 100-element buffer is still free for a big request
        d = pool.allocate((90,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_no_double_lend(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        b = pool.allocate((4,), np.float64)
        a[...] = 1.0
        b[...] = 2.0
        assert a[0] == 1.0  # distinct backings while both live

    def test_deallocate_foreign_rejected(self):
        pool = MemoryPool()
        with pytest.raises(ValueError):
            pool.deallocate(np.zeros(3))

    def test_peak_resident_tracking(self):
        pool = MemoryPool()
        a = pool.allocate((1000,), np.float64)
        b = pool.allocate((1000,), np.float64)
        assert pool.stats.peak_resident_bytes == 16000
        pool.deallocate(a)
        c = pool.allocate((500,), np.float64)
        assert pool.stats.peak_resident_bytes == 16000  # reuse, no growth

    def test_release_all(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        pool.deallocate(a)
        pool.release_all()
        pool.allocate((4,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_outstanding(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        assert pool.outstanding == 1
        pool.deallocate(a)
        assert pool.outstanding == 0

    @given(
        st.lists(
            st.tuples(st.integers(1, 200), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_never_lends_one_backing_twice(self, ops):
        """Property: at no point do two outstanding views share bytes."""
        pool = MemoryPool()
        live: list[np.ndarray] = []
        for size, free_one in ops:
            if free_one and live:
                pool.deallocate(live.pop())
            else:
                arr = pool.allocate((size,), np.float64)
                arr[...] = len(live)
                live.append(arr)
            for i, a in enumerate(live):
                assert np.all(a == i)

    def test_dtype_views(self):
        pool = MemoryPool()
        a = pool.allocate((4, 4), np.float32)
        assert a.dtype == np.float32 and a.shape == (4, 4)


class TestDirectAllocator:
    def test_always_fresh(self):
        alloc = DirectAllocator()
        a = alloc.allocate((8,), np.float64)
        alloc.deallocate(a)
        b = alloc.allocate((8,), np.float64)
        assert alloc.stats.fresh_allocations == 2
        assert alloc.stats.pool_hits == 0

    def test_resident_decreases_on_free(self):
        alloc = DirectAllocator()
        a = alloc.allocate((100,), np.float64)
        assert alloc.stats.resident_bytes == 800
        alloc.deallocate(a)
        assert alloc.stats.resident_bytes == 0
