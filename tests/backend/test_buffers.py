"""Tests for the pooled memory allocator."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.backend.buffers import DirectAllocator, MemoryPool
from repro.errors import AllocatorError, PoolExhaustedError, ReproError


class TestMemoryPool:
    def test_fresh_then_reuse(self):
        pool = MemoryPool()
        a = pool.allocate((8, 8), np.float64)
        assert pool.stats.fresh_allocations == 1
        pool.deallocate(a)
        b = pool.allocate((8, 8), np.float64)
        assert pool.stats.pool_hits == 1
        assert pool.stats.fresh_allocations == 1

    def test_bigger_buffer_serves_smaller_request(self):
        pool = MemoryPool()
        big = pool.allocate((100,), np.float64)
        pool.deallocate(big)
        small = pool.allocate((10,), np.float64)
        assert pool.stats.pool_hits == 1
        assert small.shape == (10,)

    def test_smaller_buffer_cannot_serve_bigger(self):
        pool = MemoryPool()
        small = pool.allocate((10,), np.float64)
        pool.deallocate(small)
        big = pool.allocate((100,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_best_fit_choice(self):
        pool = MemoryPool()
        a = pool.allocate((100,), np.float64)
        b = pool.allocate((20,), np.float64)
        pool.deallocate(a)
        pool.deallocate(b)
        c = pool.allocate((15,), np.float64)
        pool.deallocate(c)
        # c should have reused the 20-element buffer (best fit), so the
        # 100-element buffer is still free for a big request
        d = pool.allocate((90,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_no_double_lend(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        b = pool.allocate((4,), np.float64)
        a[...] = 1.0
        b[...] = 2.0
        assert a[0] == 1.0  # distinct backings while both live

    def test_deallocate_foreign_rejected(self):
        pool = MemoryPool()
        with pytest.raises(ValueError):
            pool.deallocate(np.zeros(3))

    def test_peak_resident_tracking(self):
        pool = MemoryPool()
        a = pool.allocate((1000,), np.float64)
        b = pool.allocate((1000,), np.float64)
        assert pool.stats.peak_resident_bytes == 16000
        pool.deallocate(a)
        c = pool.allocate((500,), np.float64)
        assert pool.stats.peak_resident_bytes == 16000  # reuse, no growth

    def test_release_all(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        pool.deallocate(a)
        pool.release_all()
        pool.allocate((4,), np.float64)
        assert pool.stats.fresh_allocations == 2

    def test_outstanding(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        assert pool.outstanding == 1
        pool.deallocate(a)
        assert pool.outstanding == 0

    @given(
        st.lists(
            st.tuples(st.integers(1, 200), st.booleans()),
            min_size=1,
            max_size=40,
        )
    )
    def test_never_lends_one_backing_twice(self, ops):
        """Property: at no point do two outstanding views share bytes."""
        pool = MemoryPool()
        live: list[np.ndarray] = []
        for size, free_one in ops:
            if free_one and live:
                pool.deallocate(live.pop())
            else:
                arr = pool.allocate((size,), np.float64)
                arr[...] = len(live)
                live.append(arr)
            for i, a in enumerate(live):
                assert np.all(a == i)

    def test_dtype_views(self):
        pool = MemoryPool()
        a = pool.allocate((4, 4), np.float32)
        assert a.dtype == np.float32 and a.shape == (4, 4)


class TestByteBudget:
    def test_budget_breach_raises_typed_error(self):
        pool = MemoryPool(byte_budget=1000)
        pool.allocate((100,), np.float64)  # 800 bytes
        with pytest.raises(PoolExhaustedError) as exc:
            pool.allocate((100,), np.float64)
        # inside the ReproError taxonomy, with structured context
        assert isinstance(exc.value, ReproError)
        assert exc.value.context["requested"] == 800
        assert exc.value.context["resident"] == 800
        assert exc.value.context["budget"] == 1000
        assert pool.stats.budget_rejections == 1

    def test_free_list_is_searched_before_the_budget(self):
        pool = MemoryPool(byte_budget=1000)
        a = pool.allocate((100,), np.float64)
        pool.deallocate(a)
        b = pool.allocate((100,), np.float64)  # pool hit, no growth
        assert pool.stats.pool_hits == 1

    def test_budget_frees_up_after_trim(self):
        pool = MemoryPool(byte_budget=1000)
        a = pool.allocate((100,), np.float64)
        pool.deallocate(a)
        pool.trim()
        pool.allocate((120,), np.float64)  # 960 bytes fit again

    def test_rejects_negative_budget(self):
        with pytest.raises(AllocatorError):
            MemoryPool(byte_budget=-1)

    def test_unbounded_by_default(self):
        pool = MemoryPool()
        assert pool.byte_budget is None
        pool.allocate((10_000,), np.float64)


class TestTrimAndLeaks:
    def test_trim_releases_only_free_buffers(self):
        pool = MemoryPool()
        a = pool.allocate((100,), np.float64)
        b = pool.allocate((50,), np.float64)
        pool.deallocate(b)
        released = pool.trim()
        assert released == 400
        assert pool.stats.resident_bytes == 800  # lent buffer stays
        assert pool.stats.trimmed_bytes == 400
        a[...] = 1.0  # lent view untouched by the trim
        assert np.all(a == 1.0)

    def test_trim_empty_pool_is_a_noop(self):
        pool = MemoryPool()
        assert pool.trim() == 0

    def test_outstanding_bytes(self):
        pool = MemoryPool()
        a = pool.allocate((100,), np.float64)
        assert pool.outstanding_bytes == 800
        pool.deallocate(a)
        assert pool.outstanding_bytes == 0

    def test_assert_no_leaks(self):
        pool = MemoryPool()
        a = pool.allocate((4,), np.float64)
        with pytest.raises(AllocatorError) as exc:
            pool.assert_no_leaks()
        assert exc.value.context["outstanding"] == 1
        pool.deallocate(a)
        pool.assert_no_leaks()  # clean

    def test_direct_allocator_interface_parity(self):
        alloc = DirectAllocator()
        a = alloc.allocate((4,), np.float64)
        assert alloc.outstanding == 1
        assert alloc.outstanding_bytes == 32
        assert alloc.trim() == 0
        with pytest.raises(AllocatorError):
            alloc.assert_no_leaks()
        alloc.deallocate(a)
        alloc.assert_no_leaks()


class TestDirectAllocator:
    def test_always_fresh(self):
        alloc = DirectAllocator()
        a = alloc.allocate((8,), np.float64)
        alloc.deallocate(a)
        b = alloc.allocate((8,), np.float64)
        assert alloc.stats.fresh_allocations == 2
        assert alloc.stats.pool_hits == 0

    def test_resident_decreases_on_free(self):
        alloc = DirectAllocator()
        a = alloc.allocate((100,), np.float64)
        assert alloc.stats.resident_bytes == 800
        alloc.deallocate(a)
        assert alloc.stats.resident_bytes == 0
