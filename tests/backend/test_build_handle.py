"""Background native-build thread hygiene.

The JIT build runs on a background thread so the toolchain overlaps
the first numpy-executed cycles.  That thread must be a *daemon* (a
wedged compiler cannot block interpreter shutdown), must be retained
on its :class:`~repro.backend.native.NativeBuildHandle`, and
``CompiledPipeline.close()`` must join it *bounded* — an in-flight
build delays shutdown by at most its join timeout, never forever.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.backend import native as native_mod
from repro.backend.native import NativeBuildHandle, start_native_build
from repro.compiler import compile_pipeline
from repro.errors import NativeToolchainError
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_native

TILES = {2: (8, 16)}


def _compile(pipe):
    return compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_native(tile_sizes=dict(TILES), num_threads=1),
        name=pipe.name,
        cache=False,
    )


def _pipe():
    return build_poisson_cycle(
        2, 16, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    )


def test_background_build_thread_is_a_named_daemon(monkeypatch):
    # a toolchain-less build still exercises the threading path
    monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
    compiled = _compile(_pipe())
    handle = compiled._native_handle
    assert handle is not None
    assert handle.thread is not None
    assert handle.thread.daemon is True
    assert handle.thread.name == "polymg-native-build"
    assert handle.wait(30)
    assert handle.join(5) is True
    assert handle.state == "failed"


def test_inline_build_has_no_thread_and_join_is_a_noop(monkeypatch):
    monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
    compiled = _compile(_pipe())
    handle = start_native_build(compiled, background=False)
    assert handle.thread is None
    assert handle.join() is True
    assert handle.state == "failed"


def test_fresh_handle_joins_trivially():
    assert NativeBuildHandle().join(0.1) is True


def test_close_joins_an_in_flight_build_bounded(monkeypatch):
    """``close()`` during a slow compile returns promptly (the join is
    bounded) and leaves the daemon build thread to finish on its own —
    it must never hang shutdown behind the toolchain."""
    release = {"at": time.monotonic() + 3.0}

    def slow_build(compiled, timeout=None):
        while time.monotonic() < release["at"]:
            time.sleep(0.02)
        raise NativeToolchainError("slow build stub")

    monkeypatch.setattr(native_mod, "build_native_runner", slow_build)
    compiled = _compile(_pipe())
    handle = compiled._native_handle
    assert handle.state == "pending"
    t0 = time.monotonic()
    compiled.close()
    elapsed = time.monotonic() - t0
    assert elapsed < 2.0  # bounded join (0.5 s), not the full build
    assert handle.thread.is_alive()  # still compiling, off-critical-path
    # and the build still lands normally afterwards
    assert handle.wait(30)
    assert handle.join(10) is True
    assert handle.state == "failed"


def test_close_is_still_usable_after_join(monkeypatch):
    monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
    pipe = _pipe()
    compiled = _compile(pipe)
    compiled._native_handle.wait(30)
    compiled.close()
    # close() is documented idempotent and non-terminal
    rng = np.random.default_rng(7)
    shape = (18, 18)
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    out = compiled.execute(dict(inputs))
    assert pipe.output.name in out
    compiled.close()
