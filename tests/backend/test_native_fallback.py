"""Native backend degradation, verification, and accounting.

The native rung must never be load-bearing: a missing toolchain, a
failing or timed-out compile, an attached fault injector, or a runtime
rejection all degrade to the planned numpy backend with a *structured
incident* — visible in ``CompiledPipeline.report.incidents`` and
counted in ``ExecutionStats.native_fallbacks`` — never a silent
downgrade and never a wrong answer.  These tests run (and pass) with
or without a C toolchain; the ones that need a real compile skip with
a notice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import discover_compiler
from repro.backend.registry import PLANNED
from repro.bench.report import print_execution_stats
from repro.compiler import compile_pipeline
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.tuning.autotuner import _timed_compile
from repro.variants import polymg_native, polymg_opt_plus

HAVE_CC = discover_compiler() is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason="no C toolchain on PATH (cc/gcc/clang)"
)

N = 16
TILES = {2: (8, 16)}


def _pipe():
    return build_poisson_cycle(
        2, N, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    )


def _inputs(pipe):
    rng = np.random.default_rng(20170712)
    shape = (N + 2, N + 2)
    return pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )


def _reference(pipe, inputs):
    planned = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_opt_plus(tile_sizes=dict(TILES), num_threads=1),
        name=pipe.name,
        cache=False,
    )
    return planned.execute(dict(inputs))[pipe.output.name]


def _compile_native(pipe, **overrides):
    cfg = polymg_native(
        tile_sizes=dict(TILES), num_threads=1, **overrides
    )
    return compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )


def _assert_visible_fallback(compiled, action: str | None = None):
    records = [
        rec
        for rec in compiled.report.incidents
        if rec["kind"] == "native-fallback"
    ]
    assert len(records) == 1, records  # latched: exactly one incident
    assert records[0]["fallback"] == PLANNED.name
    if action is not None:
        assert records[0]["action"] == action
    assert compiled.stats.native_fallbacks >= 1
    assert compiled.stats.native_executions == 0


class TestToolchainlessFallback:
    def test_missing_compiler_degrades_with_incident(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
        pipe = _pipe()
        compiled = _compile_native(pipe)
        inputs = _inputs(pipe)
        # safe even while the doomed build is still in flight
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        compiled._native_handle.wait(30)  # let the failed build land
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        _assert_visible_fallback(compiled, action="build-failed")

    def test_repeated_executes_log_one_incident(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
        pipe = _pipe()
        compiled = _compile_native(pipe)
        inputs = _inputs(pipe)
        compiled.execute(dict(inputs))
        compiled._native_handle.wait(30)  # let the failed build land
        for _ in range(2):
            compiled.execute(dict(inputs))
        _assert_visible_fallback(compiled)
        assert compiled.stats.native_fallbacks == 3

    def test_ensure_native_reports_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler/cc")
        pipe = _pipe()
        compiled = _compile_native(pipe)
        assert compiled.ensure_native() is None
        assert compiled._native_disabled is not None


@needs_cc
class TestCompileFailureFallback:
    def test_bad_cflags_degrade_with_incident(self):
        pipe = _pipe()
        compiled = _compile_native(
            pipe,
            native_cflags=(
                "-fPIC", "-shared", "--definitely-not-a-flag-xyz",
            ),
        )
        assert compiled.ensure_native() is None  # join the failed build
        inputs = _inputs(pipe)
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        _assert_visible_fallback(compiled, action="build-failed")

    def test_compile_timeout_degrades_with_incident(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_TIMEOUT", "0.000001")
        pipe = _pipe()
        # unique flags force an artifact-store miss so cc actually runs
        compiled = _compile_native(
            pipe,
            native_cflags=(
                "-O0", "-fPIC", "-shared", "-DPMG_TIMEOUT_TEST=1",
            ),
        )
        assert compiled.ensure_native() is None  # join the failed build
        inputs = _inputs(pipe)
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        _assert_visible_fallback(compiled, action="build-failed")


@needs_cc
class TestDiamondGroupsStayOnNumpy:
    def test_diamond_smoothing_is_unlowerable(self):
        pipe = build_poisson_cycle(
            2, 32, MultigridOptions(cycle="V", n1=4, n2=2, n3=4, levels=3)
        )
        compiled = compile_pipeline(
            pipe.output,
            pipe.params,
            polymg_native(
                tile_sizes=dict(TILES),
                num_threads=1,
                diamond_smoothing=True,
            ),
            name=pipe.name,
            cache=False,
        )
        if not compiled._diamond_groups:
            pytest.skip("no diamond groups formed at this size")
        assert compiled.ensure_native() is None  # unlowerable
        inputs = pipe.make_inputs(
            np.zeros((34, 34)), np.ones((34, 34))
        )
        compiled.execute(dict(inputs))
        _assert_visible_fallback(compiled, action="build-failed")


@needs_cc
class TestFaultInjectorFallsBack:
    def test_injector_routes_to_interpreter(self):
        pipe = _pipe()
        compiled = _compile_native(pipe)
        assert compiled.ensure_native() is not None
        calls = []
        compiled.fault_injector = lambda *a, **kw: calls.append(a)
        inputs = _inputs(pipe)
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(out, _reference(pipe, inputs))
        assert compiled.stats.native_executions == 0
        assert compiled.stats.native_fallbacks == 1
        # the hook is a per-execute condition, not a latched disable
        compiled.fault_injector = None
        compiled.execute(dict(inputs))
        assert compiled.stats.native_executions == 1


@needs_cc
class TestVerifyFullCrossCheck:
    def test_first_execute_cross_checks_then_marks_verified(self):
        pipe = _pipe()
        compiled = _compile_native(pipe, verify_level="full")
        runner = compiled.ensure_native()
        assert runner is not None
        assert runner.verified is False
        inputs = _inputs(pipe)
        out = compiled.execute(dict(inputs))[pipe.output.name]
        assert runner.verified is True
        assert compiled.stats.native_executions == 1
        assert np.allclose(
            out, _reference(pipe, inputs), rtol=1e-9, atol=1e-11
        )
        # second execute: native only, no second cross-check pass
        compiled.execute(dict(inputs))
        assert compiled.stats.native_executions == 2
        assert compiled.stats.native_fallbacks == 0


@needs_cc
class TestAccounting:
    def test_compile_time_is_charged_and_artifacts_are_reused(self):
        pipe = _pipe()
        first = _compile_native(pipe)
        assert first.ensure_native() is not None
        assert first.stats.native_compile_time_s > 0.0
        assert first.report.native_compile_time_s > 0.0

        # same source+flags+compiler => artifact-store hit, no cc run
        second = _compile_native(pipe)
        assert second.ensure_native() is not None
        assert second.stats.native_cache_hits == 1

    def test_compile_cache_clone_inherits_the_build(self):
        pipe = _pipe()
        cfg = polymg_native(tile_sizes=dict(TILES), num_threads=1)
        first = compile_pipeline(
            pipe.output, pipe.params, cfg, name=pipe.name, cache=True
        )
        assert first.ensure_native() is not None
        clone = compile_pipeline(
            pipe.output, pipe.params, cfg, name=pipe.name, cache=True
        )
        assert clone is not first
        assert clone._native_handle is first._native_handle
        assert clone.stats.native_cache_hits == 1
        inputs = _inputs(pipe)
        clone.execute(dict(inputs))
        assert clone.stats.native_executions == 1

    def test_autotuner_charges_native_compile_time(self):
        pipe = _pipe()
        cfg = polymg_native(
            tile_sizes=dict(TILES),
            num_threads=1,
            # unique flags force a real compile inside the timed region
            native_cflags=(
                "-O1", "-fPIC", "-shared", "-fopenmp",
                "-DPMG_TUNE_TEST=1",
            ),
        )
        compiled, elapsed, _hit = _timed_compile(pipe, cfg)
        assert compiled.stats.native_compile_time_s > 0.0
        assert elapsed >= compiled.stats.native_compile_time_s

    def test_counters_surface_in_the_bench_printer(self, capsys):
        pipe = _pipe()
        compiled = _compile_native(pipe)
        compiled.ensure_native()
        compiled.execute(dict(_inputs(pipe)))
        print_execution_stats(compiled.stats)
        text = capsys.readouterr().out
        assert "[native] executions" in text
        assert "[native] compile (s)" in text
        assert "[native] fallbacks" in text
