"""Whole-solve driver parity fuzz (the PR-9 correctness net).

The ``polymg_drive`` entry point moves the multigrid cycle loop, the
iterate ping-pong, and the residual-norm convergence test into one
native invocation with a persistent OpenMP team.  None of that is
allowed to change a single bit of the numerics: the driver replicates
numpy's pairwise summation for the residual norm, applies the same
strict ``norm < tol`` test the supervisor uses, and hands back the
iterate exactly as the per-cycle regime would have left it.

These suites fuzz that contract across 2-D/3-D V- and W-cycle
pipelines and thread counts:

* a k-cycle driver burst must produce the **bitwise-identical**
  residual history and final iterate as k per-cycle native executes
  with the norm computed in numpy between calls;
* the in-kernel convergence test must stop at exactly the cycle the
  Python-side test would have stopped at, with the histories equal up
  to that cycle;
* a supervised solve preempted at a driver hook boundary and resumed
  from its checkpoint must be indistinguishable — same residual
  history, same final iterate — from a solve that was never
  interrupted.

Everything here skips on machines without a C toolchain; the
sandboxed-driver variants of these properties live in
``tests/backend/test_sandbox.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import discover_compiler
from repro.backend.registry import DRIVER, TIERS
from repro.compiler import compile_pipeline
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.kernels import norm_residual
from repro.multigrid.reference import MultigridOptions
from repro.resilience import (
    DegradationLadder,
    SolveSupervisor,
    SupervisorPolicy,
)
from repro.variants import polymg_driver, polymg_native

needs_cc = pytest.mark.skipif(
    discover_compiler() is None,
    reason="no C toolchain on PATH (cc/gcc/clang)",
)

TILES = {2: (8, 16), 3: (4, 8, 8)}

# (ndim, cycle, n, threads) — both ranks, both cycle shapes, serial
# and parallel OpenMP teams
CASES = [
    (2, "V", 16, 1),
    (2, "V", 32, 4),
    (2, "W", 16, 2),
    (3, "V", 8, 1),
    (3, "W", 8, 2),
]


def _case(ndim, n, cycle, seed=20170712):
    pipe = build_poisson_cycle(
        ndim, n, MultigridOptions(cycle=cycle, n1=2, n2=2, n3=2, levels=3)
    )
    rng = np.random.default_rng(seed)
    shape = (n + 2,) * ndim
    f = np.zeros(shape)
    f[(slice(1, -1),) * ndim] = rng.standard_normal((n,) * ndim)
    return pipe, f


def _compile(pipe, factory, threads, **overrides):
    cfg = factory(
        tile_sizes=dict(TILES), num_threads=threads, **overrides
    )
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    TIERS.resolve(cfg.backend).ensure_ready(compiled)
    return compiled


def _percycle(compiled, pipe, f, cycles, tol=None):
    """The per-cycle regime: one execute per cycle, residual norm in
    numpy between calls, the supervisor's strict ``norm < tol`` test."""
    h = 1.0 / (f.shape[0] - 1)
    u, norms = np.zeros_like(f), []
    for _ in range(cycles):
        u = compiled.execute(pipe.make_inputs(u, f))[pipe.output.name]
        norms.append(float(norm_residual(u, f, h)))
        if tol is not None and norms[-1] < tol:
            break
    return u, norms


@needs_cc
@pytest.mark.parametrize("ndim,cycle,n,threads", CASES)
def test_driver_burst_is_bitwise_identical_to_percycle(
    ndim, cycle, n, threads
):
    pipe, f = _case(ndim, n, cycle)
    native = _compile(pipe, polymg_native, threads)
    driver = _compile(pipe, polymg_driver, threads)
    try:
        ref_u, ref_norms = _percycle(native, pipe, f, cycles=5)
        served = driver.drive(
            pipe.make_inputs(np.zeros_like(f), f),
            max_cycles=5,
            tol=0.0,  # tol <= 0 disables the in-kernel test
            spec=pipe.drive_spec(),
        )
    finally:
        native.close()
        driver.close()
    assert served is not None, "driver failed to serve with a toolchain"
    assert served.cycles == 5 and not served.converged
    # iterate-for-iterate: every per-cycle residual norm, bitwise
    assert list(served.norms) == ref_norms
    assert np.array_equal(served.outputs[pipe.output.name], ref_u)


@needs_cc
@pytest.mark.parametrize("ndim,cycle,n,threads", CASES[:3])
def test_in_kernel_convergence_stops_at_the_same_cycle(
    ndim, cycle, n, threads
):
    pipe, f = _case(ndim, n, cycle)
    native = _compile(pipe, polymg_native, threads)
    driver = _compile(pipe, polymg_driver, threads)
    try:
        # pick a tolerance that stops strictly mid-burst: between the
        # 4th and 3rd residual norms of an unconstrained run
        _, free_norms = _percycle(native, pipe, f, cycles=8)
        tol = (free_norms[2] + free_norms[3]) / 2.0
        ref_u, ref_norms = _percycle(native, pipe, f, cycles=8, tol=tol)
        assert len(ref_norms) == 4  # the Python-side test stops here
        served = driver.drive(
            pipe.make_inputs(np.zeros_like(f), f),
            max_cycles=8,
            tol=tol,
            spec=pipe.drive_spec(),
        )
    finally:
        native.close()
        driver.close()
    assert served is not None
    assert served.converged and served.cycles == len(ref_norms)
    assert list(served.norms) == ref_norms
    assert np.array_equal(served.outputs[pipe.output.name], ref_u)


@needs_cc
class TestSupervisedPreemption:
    """Preempting a supervised solve at a driver hook boundary and
    resuming its checkpoint loses nothing — bitwise."""

    HOOK = 3
    OVERRIDES = {"tile_sizes": {2: (8, 16)}, "driver_hook_cycles": HOOK}
    POLICY = dict(max_cycles=24, tol=1e-5)

    def _supervisor(self, pipe):
        sup = SolveSupervisor(
            pipe,
            SupervisorPolicy(**self.POLICY),
            ladder=DegradationLadder(),
            config_overrides=dict(self.OVERRIDES),
        )
        # block on the JIT build so the very first attempt is a full
        # driver burst, not a build-in-flight per-cycle fallback
        compiled = sup.resilient.compiled_for("polymg-driver")
        TIERS.resolve(DRIVER.name).ensure_ready(compiled)
        return sup

    def test_preempt_at_hook_boundary_then_resume_is_lossless(self):
        pipe, f = _case(2, 16, "V")

        calls = {"n": 0}

        def stop_after_first_burst():
            calls["n"] += 1
            return calls["n"] > 1  # polled once per burst attempt

        preempted = self._supervisor(pipe).solve(
            f, should_stop=stop_after_first_burst
        )
        assert preempted.status == "preempted"
        # the driver served whole bursts: preemption lands exactly on
        # a k-cycle hook boundary, never mid-burst
        assert preempted.cycles == self.HOOK
        assert preempted.cycles % self.HOOK == 0
        assert set(preempted.variant_trail) == {"polymg-driver"}
        assert preempted.checkpoint is not None

        resumed = self._supervisor(pipe).solve(
            f, resume_from=preempted.checkpoint
        )
        uninterrupted = self._supervisor(pipe).solve(f)

        assert resumed.status == uninterrupted.status == "converged"
        # the stitched history is bitwise the uninterrupted history …
        assert resumed.residual_norms == uninterrupted.residual_norms
        assert resumed.cycles == uninterrupted.cycles
        # … and so is the final iterate
        assert np.array_equal(resumed.u, uninterrupted.u)

    def test_preempted_burst_count_is_visible_in_driver_stats(self):
        pipe, f = _case(2, 16, "V")
        sup = self._supervisor(pipe)
        result = sup.solve(f)
        assert result.converged
        compiled = sup.resilient.compiled_for("polymg-driver")
        tier = compiled.stats.tier(DRIVER.name)
        # every accepted cycle ran inside the driver, one hook return
        # per burst
        assert tier.cycles_in_native == result.cycles
        assert tier.hook_returns == -(-result.cycles // self.HOOK)
