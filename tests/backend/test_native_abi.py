"""The ctypes ABI boundary of the native backend.

The shared object must only ever see dense row-major float64
descriptors.  Anything else the caller hands us — sliced views,
Fortran ordering, float32, misaligned buffers, wrong shapes, object
dtypes — must either be normalized into a correct round-trip or raise
a typed :class:`~repro.errors.ReproError`; never corrupt memory, and
never mutate the caller's input arrays.  The descriptor validator on
the C side (``pmg_check_buffer``) is exercised directly by smuggling a
non-dense descriptor past the Python-side normalizer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import discover_compiler
from repro.compiler import compile_pipeline
from repro.errors import (
    InputShapeError,
    NativeABIError,
    NativeBackendError,
    ReproError,
)
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_native, polymg_opt_plus

HAVE_CC = discover_compiler() is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason="no C toolchain on PATH (cc/gcc/clang)"
)

N = 16
TILES = {2: (8, 16)}


def _pipe():
    return build_poisson_cycle(
        2, N, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    )


@pytest.fixture(scope="module")
def native():
    """One native-compiled 2-D V-cycle shared by the module (compiles
    once; tests only vary the inputs they feed it)."""
    pipe = _pipe()
    compiled = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_native(tile_sizes=dict(TILES), num_threads=1),
        name=pipe.name,
        cache=False,
    )
    if HAVE_CC:
        assert compiled.ensure_native() is not None
    return pipe, compiled


@pytest.fixture(scope="module")
def reference(native):
    """The planned-numpy answer for the canonical random inputs."""
    pipe, _ = native
    planned = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_opt_plus(tile_sizes=dict(TILES), num_threads=1),
        name=pipe.name,
        cache=False,
    )
    v, f = _canonical_inputs()
    return planned.execute(pipe.make_inputs(v, f))[pipe.output.name]


def _canonical_inputs():
    rng = np.random.default_rng(20170712)
    shape = (N + 2, N + 2)
    return rng.standard_normal(shape), rng.standard_normal(shape)


def _check(native, reference, v, f):
    """Execute with (possibly hostile) input arrays; assert the answer
    matches the planned reference and the inputs were not mutated."""
    pipe, compiled = native
    v_before, f_before = np.array(v), np.array(f)
    out = compiled.execute(pipe.make_inputs(v, f))[pipe.output.name]
    assert np.array_equal(np.asarray(v), v_before)
    assert np.array_equal(np.asarray(f), f_before)
    assert np.allclose(out, reference, rtol=1e-9, atol=1e-11)
    return out


@needs_cc
class TestHostileInputsRoundTrip:
    def test_contiguous_baseline(self, native, reference):
        v, f = _canonical_inputs()
        _check(native, reference, v, f)
        assert native[1].stats.native_executions >= 1

    def test_sliced_non_contiguous_views(self, native, reference):
        v, f = _canonical_inputs()
        big_v = np.zeros((2 * (N + 2), 2 * (N + 2)))
        big_v[:: 2, :: 2] = v
        big_f = np.zeros((N + 2, 2 * (N + 2)))
        big_f[:, :: 2] = f
        sv, sf = big_v[:: 2, :: 2], big_f[:, :: 2]
        assert not sv.flags.c_contiguous
        _check(native, reference, sv, sf)

    def test_fortran_ordered_inputs(self, native, reference):
        v, f = _canonical_inputs()
        fv = np.asfortranarray(v)
        ff = np.asfortranarray(f)
        assert not fv.flags.c_contiguous
        _check(native, reference, fv, ff)

    def test_transposed_view(self, native, reference):
        v, f = _canonical_inputs()
        _check(native, reference, np.ascontiguousarray(v.T).T, f)

    def test_float32_inputs_upcast(self, native):
        pipe, compiled = native
        v, f = _canonical_inputs()
        v32, f32 = v.astype(np.float32), f.astype(np.float32)
        got = compiled.execute(pipe.make_inputs(v32, f32))[
            pipe.output.name
        ]
        # the upcast copy is semantically float64(v32): compare against
        # the same upcast through the planned backend
        planned = compile_pipeline(
            pipe.output,
            pipe.params,
            polymg_opt_plus(tile_sizes=dict(TILES), num_threads=1),
            name=pipe.name,
            cache=False,
        )
        want = planned.execute(
            pipe.make_inputs(v32.astype(np.float64), f32.astype(np.float64))
        )[pipe.output.name]
        assert np.allclose(got, want, rtol=1e-9, atol=1e-11)

    def test_misaligned_view(self, native, reference):
        v, f = _canonical_inputs()
        nbytes = v.nbytes
        raw = np.empty(nbytes + 1, dtype=np.uint8)
        mis = (
            raw[1 : nbytes + 1]
            .view(np.float64)
            .reshape(v.shape)
        )
        mis[...] = v
        if mis.flags.aligned:  # platform allows unaligned doubles
            pytest.skip("could not construct a misaligned view here")
        _check(native, reference, mis, f)


class TestTypedRejections:
    def test_wrong_shape_raises_typed_error(self, native):
        pipe, compiled = native
        v, f = _canonical_inputs()
        bad = np.zeros((N + 3, N + 3))
        with pytest.raises(ReproError):
            # rejected before any native invocation (shape gate); the
            # error is InputShapeError from the executor's front door
            compiled.execute(pipe.make_inputs(bad, f))

    def test_shape_error_is_input_shape_error(self, native):
        pipe, compiled = native
        _, f = _canonical_inputs()
        with pytest.raises(InputShapeError):
            compiled.execute(pipe.make_inputs(np.zeros((3, 3)), f))

    @needs_cc
    def test_object_dtype_raises_native_abi_error(self, native):
        pipe, compiled = native
        runner = compiled.ensure_native()
        assert runner is not None
        v = np.empty((N + 2, N + 2), dtype=object)
        v[...] = "not-a-number"
        grid = pipe.v_grid
        with pytest.raises(NativeABIError):
            runner._normalize(grid, v)

    @needs_cc
    def test_runner_rejects_wrong_shape(self, native):
        pipe, compiled = native
        runner = compiled.ensure_native()
        inputs = {g for g, _ in runner.inputs}
        arrays = {g: np.zeros((N + 1, N + 1)) for g in inputs}
        with pytest.raises(NativeABIError):
            runner.run(arrays, num_threads=1)


@needs_cc
class TestCSideDescriptorValidation:
    def test_non_dense_descriptor_is_rejected_by_the_so(
        self, native, monkeypatch
    ):
        """Smuggle a Fortran-ordered array past the Python normalizer:
        ``pmg_check_buffer`` must reject the stride pattern with an
        input-descriptor return code, surfaced as NativeABIError."""
        pipe, compiled = native
        runner = compiled.ensure_native()
        monkeypatch.setattr(
            runner, "_normalize", lambda func, arr: arr
        )
        arrays = {
            g: np.asfortranarray(np.zeros(shape))
            for g, shape in runner.inputs
        }
        with pytest.raises(NativeABIError) as exc:
            runner.run(arrays, num_threads=1)
        assert "descriptor" in str(exc.value)

    def test_error_code_mapping(self, native):
        pipe, compiled = native
        runner = compiled.ensure_native()
        assert isinstance(runner._error_for(500), NativeBackendError)
        err_in = runner._error_for(100)
        assert isinstance(err_in, NativeABIError)
        assert runner.inputs[0][0].name in str(err_in)
        err_out = runner._error_for(200)
        assert isinstance(err_out, NativeABIError)
        assert runner.outputs[0][0].name in str(err_out)
        assert isinstance(runner._error_for(3), NativeABIError)

    def test_execute_survives_runtime_rejection_via_fallback(
        self, reference
    ):
        """If the shared object rejects a call at runtime, execute()
        falls back to the numpy backend (visible incident), it does not
        crash or corrupt."""
        pipe = _pipe()
        compiled = compile_pipeline(
            pipe.output,
            pipe.params,
            polymg_native(tile_sizes=dict(TILES), num_threads=1),
            name=pipe.name,
            cache=False,
        )
        runner = compiled.ensure_native()
        assert runner is not None

        def reject(*a, **kw):
            raise NativeABIError("synthetic runtime rejection")

        runner.run = reject
        v, f = _canonical_inputs()
        out = compiled.execute(pipe.make_inputs(v, f))[pipe.output.name]
        assert np.allclose(out, reference, rtol=1e-9, atol=1e-11)
        assert compiled.stats.native_fallbacks >= 1
        kinds = [rec["kind"] for rec in compiled.report.incidents]
        assert "native-fallback" in kinds
