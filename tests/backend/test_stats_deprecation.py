"""Deprecated flat ``ExecutionStats`` counters.

The historical flat attributes (``native_executions``,
``kernel_cache_hits``, ...) read through to the per-tier records and
emit one :class:`DeprecationWarning` per process — exactly one, so a
hot loop over stats does not drown the log, and with a message that
names the replacement.
"""

from __future__ import annotations

import warnings

import pytest

from repro.backend import executor as executor_mod
from repro.backend.executor import ExecutionStats
from repro.backend.registry import NATIVE, PLANNED


@pytest.fixture(autouse=True)
def _fresh_warning_latch():
    executor_mod._reset_flat_counter_warning()
    yield
    executor_mod._reset_flat_counter_warning()


def test_flat_read_warns_and_reads_through():
    stats = ExecutionStats()
    stats.tier(NATIVE.name).executions = 7
    with pytest.warns(
        DeprecationWarning, match=r"native_executions is deprecated"
    ):
        assert stats.native_executions == 7


def test_flat_write_warns_and_writes_through():
    stats = ExecutionStats()
    with pytest.warns(
        DeprecationWarning, match=r"native_fallbacks is deprecated"
    ):
        stats.native_fallbacks = 3
    assert stats.tier(NATIVE.name).fallbacks == 3


def test_warning_fires_once_per_process():
    stats = ExecutionStats()
    with pytest.warns(DeprecationWarning):
        _ = stats.native_executions
    # every further flat access — same or different counter, read or
    # write — is silent until the process-level latch is reset
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        _ = stats.native_executions
        _ = stats.kernel_cache_hits
        _ = stats.native_cache_hits
        stats.plan_time_s = 0.25
    assert stats.tier(PLANNED.name).plan_time_s == 0.25


def test_message_names_the_tier_replacement():
    stats = ExecutionStats()
    with pytest.warns(DeprecationWarning) as caught:
        _ = stats.native_compile_time_s
    assert len(caught) == 1
    assert "ExecutionStats.tier" in str(caught[0].message)
