"""Registry-driven cross-tier parity (the PR-7 correctness net).

Rather than hard-coding backend names, these suites enumerate the
:data:`~repro.backend.registry.TIERS` registry and dispatch a parity
harness off each tier's declared capability flags — so a newly
registered execution tier is automatically fuzzed against the reference
execution path with zero test edits:

* a ``plans_kernels`` tier must be **bitwise** identical to the
  tree-walking interpreter (numpy tapes replay the same ufunc
  sequence);
* a ``jit_build`` tier (compiled out-of-process, free to reassociate
  floating point) must match within tight ``allclose`` tolerances, and
  skips on machines without a C toolchain;
* a ``supports_batching`` tier must produce **bitwise** identical
  outputs to executing the same requests one at a time.

Registry-contract tests pin the tier order, the degradation ladder
derivation, the fallback edges, and the per-tier stats/health
plumbing the resilience and service layers consume.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.native import discover_compiler
from repro.backend.registry import (
    BATCHED,
    DRIVER,
    INTERPRETED,
    NATIVE,
    PLANNED,
    TIERS,
)
from repro.compiler import compile_pipeline
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import LADDER_ORDER, polymg_opt_plus

HAVE_CC = discover_compiler() is not None

RTOL, ATOL = 1e-9, 1e-11
TILES = {2: (8, 16), 3: (4, 8, 8)}


def _case(ndim=2, n=16, cycle="V", seed=20170712):
    pipe = build_poisson_cycle(
        ndim, n, MultigridOptions(cycle=cycle, levels=3)
    )
    rng = np.random.default_rng(seed)
    shape = (n + 2,) * ndim
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def _compile(pipe, **overrides):
    cfg = polymg_opt_plus(tile_sizes=dict(TILES), **overrides)
    return compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )


# ---------------------------------------------------------------------------
# registry contract
# ---------------------------------------------------------------------------


def test_registry_orders_all_five_tiers():
    assert TIERS.names() == (
        DRIVER.name,
        NATIVE.name,
        BATCHED.name,
        PLANNED.name,
        INTERPRETED.name,
    )


def test_ladder_order_is_concatenation_of_tier_rungs():
    concat = tuple(
        rung
        for name in TIERS.names()
        for rung in TIERS.resolve(name).rungs
    )
    assert TIERS.ladder_order() == concat == LADDER_ORDER


def test_selectable_names_exclude_internal_tiers():
    selectable = TIERS.selectable_names()
    assert BATCHED.name not in selectable
    for name in selectable:
        assert TIERS.resolve(name).config_selectable


def test_fallback_chain_terminates_at_interpreted():
    for name in TIERS.names():
        tier = TIERS.resolve(name)
        seen = set()
        while tier is not None:
            assert tier.name not in seen  # no cycles
            seen.add(tier.name)
            tier = TIERS.fallback_for(tier)
        assert INTERPRETED.name in seen or name == INTERPRETED.name


def test_resolve_unknown_tier_is_a_keyerror():
    with pytest.raises(KeyError, match="native"):
        TIERS.resolve("no-such-tier")


def test_degradation_floor_is_last_ladder_rung():
    assert TIERS.degradation_floor() == TIERS.ladder_order()[-1]
    assert TIERS.tier_of_rung("polymg-native") is NATIVE
    assert TIERS.tier_of_rung("polymg-naive") is PLANNED


def test_capability_flags_partition_the_registry():
    flags = {
        name: (
            TIERS.resolve(name).plans_kernels,
            TIERS.resolve(name).jit_build,
            TIERS.resolve(name).supports_batching,
            TIERS.resolve(name).supports_fault_injection,
        )
        for name in TIERS.names()
    }
    assert flags[INTERPRETED.name] == (False, False, False, True)
    assert flags[PLANNED.name] == (True, False, False, False)
    assert flags[NATIVE.name] == (True, True, False, False)
    assert flags[BATCHED.name] == (True, False, True, False)
    assert flags[DRIVER.name] == (True, True, False, False)
    # the driver is the only whole-solve-capable tier
    whole = [
        name
        for name in TIERS.names()
        if getattr(TIERS.resolve(name), "whole_solve", False)
    ]
    assert whole == [DRIVER.name]


# ---------------------------------------------------------------------------
# capability-dispatched parity over every registered tier
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier_name", TIERS.names())
@pytest.mark.parametrize("ndim,n", [(2, 16), (3, 8)])
def test_every_tier_matches_the_reference_execution(tier_name, ndim, n):
    tier = TIERS.resolve(tier_name)
    if tier.jit_build and not HAVE_CC:
        pytest.skip("no C toolchain on PATH (cc/gcc/clang)")
    pipe, inputs = _case(ndim=ndim, n=n)
    reference = _compile(pipe, backend="interpreted")
    expected = reference.execute(dict(inputs))[pipe.output.name]

    if tier.supports_batching:
        # batched tiers are exercised through their batch entry point:
        # k same-spec requests, one plan walk, bitwise-equal outputs
        compiled = _compile(pipe)
        rng = np.random.default_rng(7)
        shape = expected.shape
        batch = [dict(inputs)]
        for _ in range(2):
            batch.append(
                pipe.make_inputs(
                    rng.standard_normal(shape),
                    rng.standard_normal(shape),
                )
            )
        singly = [
            compiled.execute(dict(b))[pipe.output.name] for b in batch
        ]
        outs = tier.execute_batch(compiled, [dict(b) for b in batch])
        assert compiled.stats.tier(tier.name).coalesced == len(batch)
        for got, ref in zip(outs, singly):
            assert np.array_equal(got[pipe.output.name], ref)
        assert np.array_equal(singly[0], expected)
        return

    compiled = _compile(pipe, backend=tier.name)
    tier.ensure_ready(compiled)
    got = compiled.execute(dict(inputs))[pipe.output.name]
    assert compiled.stats.tier(tier.name).executions >= 1
    if tier.jit_build:
        assert np.allclose(got, expected, rtol=RTOL, atol=ATOL)
    else:
        assert np.array_equal(got, expected)


# ---------------------------------------------------------------------------
# per-tier stats and health plumbing
# ---------------------------------------------------------------------------


def test_execution_stats_flat_properties_read_through_tiers():
    pipe, inputs = _case()
    compiled = _compile(pipe)
    compiled.execute(dict(inputs))
    stats = compiled.stats
    assert PLANNED.name in stats.tiers
    # deprecated flat counters are views over the per-tier records
    assert (
        stats.kernel_cache_hits == stats.tier(PLANNED.name).cache_hits
    )
    assert stats.plan_time_s == stats.tier(PLANNED.name).plan_time_s
    assert (
        stats.native_executions == stats.tier(NATIVE.name).executions
    )
    assert stats.native_fallbacks == stats.tier(NATIVE.name).fallbacks
    d = stats.tier(PLANNED.name).to_dict()
    assert d["tier"] == PLANNED.name and d["executions"] >= 1


def test_tier_health_sections_cover_every_tier():
    from repro.resilience import DegradationLadder

    ladder = DegradationLadder()
    health = TIERS.tier_health(ladder)
    assert set(health) == set(TIERS.names())
    for name, section in health.items():
        assert set(section) >= {
            "breaker",
            "executions",
            "failures",
            "trips",
            "rungs",
        }
        rungs = TIERS.resolve(name).rungs
        assert set(section["rungs"]) == set(rungs)
        if not rungs:
            assert section["breaker"] == "n/a"
