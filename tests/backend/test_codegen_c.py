"""Tests for the C/OpenMP code emitter (Figure 8 parity)."""

import shutil
import subprocess
import tempfile

import pytest

from repro.backend.codegen_c import (
    NATIVE_ENTRY_NAME,
    POOL_RUNTIME,
    generate_c,
    generate_native_c,
    generated_loc,
)
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.variants import polymg_naive, polymg_opt, polymg_opt_plus

STRICT_CFLAGS = ["-O1", "-fopenmp", "-Wall", "-Wextra", "-Werror", "-c"]


def _compile_smoke(code: str) -> None:
    cc = shutil.which("gcc") or shutil.which("cc")
    with tempfile.NamedTemporaryFile("w", suffix=".c", delete=False) as fh:
        fh.write(code)
        path = fh.name
    proc = subprocess.run(
        [cc, *STRICT_CFLAGS, path, "-o", path + ".o"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr[:2000]


@pytest.fixture(scope="module")
def compiled_2d():
    opts = MultigridOptions(cycle="V", n1=4, n2=2, n3=4, levels=3)
    pipe = build_poisson_cycle(2, 64, opts)
    return pipe.compile(
        polymg_opt_plus(tile_sizes={2: (16, 32)}, group_size_limit=6)
    )


class TestFigure8Features:
    def test_pool_calls(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert "pool_allocate(sizeof(double)" in code
        assert "pool_deallocate(" in code

    def test_collapse_pragma(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert (
            "#pragma omp parallel for schedule(static) collapse(2)" in code
        )

    def test_scratchpads_with_users(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert "/* Scratchpads */" in code
        assert "/* users : [" in code
        assert "double _buf_" in code

    def test_ivdep_inner(self, compiled_2d):
        # #pragma ivdep is an unknown pragma to gcc; the emitted code
        # carries a compiler-dispatched PMG_IVDEP macro instead
        code = generate_c(compiled_2d)
        assert "PMG_IVDEP" in code
        assert '_Pragma("GCC ivdep")' in code

    def test_clamped_tile_bounds(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert "max(" in code and "min(" in code

    def test_tile_region_propagation(self, compiled_2d):
        code = generate_c(compiled_2d)
        # per-tile regions replayed from the tile coordinates T_d
        assert "/* tile regions (backward footprint propagation) */" in code
        assert "T_0" in code and "_s" in code

    def test_scratch_indexed_by_region_origin(self, compiled_2d):
        code = generate_c(compiled_2d)
        # Figure 8's tile-relative scratch subscripts: the hoisted
        # region lower bounds serve as the scratchpad origins
        assert "_lb0)" in code and "_buf_" in code

    def test_output_returned(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert "*out_" in code

    def test_pool_runtime_included(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert POOL_RUNTIME.splitlines()[0] in code


class TestNativeMode:
    def test_entry_point_emitted(self, compiled_2d):
        code = generate_native_c(compiled_2d)
        assert f"int {NATIVE_ENTRY_NAME}(" in code
        assert "pmg_buffer" in code
        assert "pmg_check_buffer" in code

    def test_outputs_written_in_place(self, compiled_2d):
        code = generate_native_c(compiled_2d)
        # native outputs are caller buffers, not pool allocations
        assert "double *restrict out_" in code
        assert "**restrict out_" not in code

    def test_artifact_mode_has_no_abi(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert NATIVE_ENTRY_NAME not in code
        assert "pmg_buffer" not in code


class TestLoc:
    def test_loc_counts_nonblank(self, compiled_2d):
        code = generate_c(compiled_2d)
        assert generated_loc(compiled_2d) == sum(
            1 for l in code.splitlines() if l.strip()
        )

    def test_bigger_pipelines_more_code(self):
        small = build_poisson_cycle(
            2, 64, MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
        )
        big = build_poisson_cycle(
            2, 64, MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=3)
        )
        cfg = polymg_opt(tile_sizes={2: (16, 32)})
        assert generated_loc(big.compile(cfg)) > generated_loc(
            small.compile(cfg)
        )

    def test_naive_emits_straight_loops(self):
        pipe = build_poisson_cycle(
            2, 32, MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
        )
        code = generate_c(pipe.compile(polymg_naive()))
        assert "/* Scratchpads */" not in code
        assert "#pragma omp parallel for" in code


@pytest.mark.skipif(
    shutil.which("gcc") is None and shutil.which("cc") is None,
    reason="no C compiler available",
)
class TestCompileSmoke:
    def test_generated_code_compiles(self, compiled_2d):
        _compile_smoke(generate_c(compiled_2d))

    def test_native_code_compiles(self, compiled_2d):
        _compile_smoke(generate_native_c(compiled_2d))

    def test_3d_code_compiles(self):
        pipe = build_poisson_cycle(
            3, 16, MultigridOptions(cycle="V", n1=2, n2=1, n3=2, levels=2)
        )
        compiled = pipe.compile(
            polymg_opt_plus(tile_sizes={3: (4, 4, 8)})
        )
        _compile_smoke(generate_c(compiled))
        _compile_smoke(generate_native_c(compiled))

    def test_naive_code_compiles(self):
        pipe = build_poisson_cycle(
            2, 32, MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
        )
        _compile_smoke(generate_c(pipe.compile(polymg_naive())))
