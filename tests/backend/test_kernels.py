"""Kernel-plan layer tests (PR 4).

Planned execution must be bitwise identical to the tree-walking
interpreter; plans must invalidate with the compile fingerprint (tile
shapes, bindings); the persistent worker pool must be reused across
cycles and shut down cleanly; and the per-thread execution arenas must
be accounted and bounded by ``temp_arena_limit``.
"""

import numpy as np
import pytest

from repro.backend.registry import PLANNED
from repro.cache import compile_cache
from repro.compiler import compile_pipeline
from repro.config import PolyMgConfig
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.variants import polymg_opt_plus

SMALL_TILES = {1: (8,), 2: (8, 16), 3: (4, 4, 8)}


def _cycle_pipe(ndim=2, n=32):
    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    return build_poisson_cycle(ndim, n, opts)


def _inputs(pipe, ndim, n, seed=3):
    rng = np.random.default_rng(seed)
    shape = (n + 2,) * ndim
    return pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )


@pytest.mark.parametrize("ndim,n", [(1, 64), (2, 32), (3, 16)])
@pytest.mark.parametrize("threads", [1, 4])
def test_planned_matches_unplanned_on_cycles(ndim, n, threads):
    pipe = _cycle_pipe(ndim, n)
    inputs = _inputs(pipe, ndim, n)
    outs = {}
    for planned in (False, True):
        cfg = polymg_opt_plus(
            tile_sizes=dict(SMALL_TILES),
            num_threads=threads,
            kernel_plan=planned,
        )
        compiled = compile_pipeline(
            pipe.output, pipe.params, cfg, name=pipe.name, cache=False
        )
        if planned:
            assert compiled._kernel_plan is not None
        else:
            assert compiled._kernel_plan is None
        outs[planned] = compiled.execute(dict(inputs))[pipe.output.name]
        compiled.close()
    assert np.array_equal(outs[False], outs[True])


def test_plan_built_eagerly_and_timed():
    pipe = _cycle_pipe()
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    # compile_pipeline plans eagerly, records timing on stats + report
    assert compiled._kernel_plan is not None
    assert compiled.stats.tier(PLANNED.name).plan_time_s > 0.0
    assert compiled.report.plan_time_s > 0.0
    assert compiled.report.to_dict()["plan_time_s"] > 0.0
    # plan() is idempotent: a second call neither rebuilds nor re-times
    before = compiled.stats.tier(PLANNED.name).plan_time_s
    assert compiled.plan() is compiled._kernel_plan
    assert compiled.stats.tier(PLANNED.name).plan_time_s == before


def test_plan_invalidates_with_tile_shape_and_bindings():
    pipe = _cycle_pipe(2, 32)
    base = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    a = compile_pipeline(
        pipe.output, pipe.params, base, name=pipe.name, cache=False
    )
    # different tile shape -> different fingerprint -> fresh plan with
    # different tiling geometry
    b = compile_pipeline(
        pipe.output, pipe.params,
        base.with_(tile_sizes={1: (8,), 2: (16, 32), 3: (4, 4, 8)}),
        name=pipe.name, cache=False,
    )
    assert a._kernel_plan is not b._kernel_plan

    def tile_counts(plan):
        return sorted(
            len(gp.tile_plan.tiles)
            for gp in plan.groups.values()
            if gp.tiled
        )

    assert tile_counts(a._kernel_plan) != tile_counts(b._kernel_plan)

    # different bindings -> plan geometry follows the bound parameters
    big = _cycle_pipe(2, 64)
    c = compile_pipeline(
        big.output, big.params, base, name=big.name, cache=False
    )
    assert tile_counts(c._kernel_plan) != tile_counts(a._kernel_plan)


def test_plan_shared_through_compile_cache():
    pipe = _cycle_pipe(2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    compile_cache().clear()
    first = compile_pipeline(pipe.output, pipe.params, cfg, name=pipe.name)
    clone = compile_pipeline(pipe.output, pipe.params, cfg, name=pipe.name)
    assert clone is not first
    # the clone inherits the immutable plan instead of re-lowering
    assert clone._kernel_plan is first._kernel_plan
    assert clone.stats.kernel_cache_hits == 1
    assert first.stats.kernel_cache_hits == 0
    # a config change busts the content address, hence the plan
    other = compile_pipeline(
        pipe.output, pipe.params,
        cfg.with_(tile_sizes={1: (8,), 2: (16, 32), 3: (4, 4, 8)}),
        name=pipe.name,
    )
    assert other._kernel_plan is not first._kernel_plan
    assert other.stats.kernel_cache_hits == 0


def test_persistent_pool_reuse_and_shutdown():
    pipe = _cycle_pipe(2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES), num_threads=4)
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    inputs = _inputs(pipe, 2, 32)
    compiled.execute(dict(inputs))
    pool = compiled._pool
    assert pool is not None
    first_reuse = compiled.stats.pool_reuse_count
    compiled.execute(dict(inputs))
    # the same pool instance served the second cycle
    assert compiled._pool is pool
    assert compiled.stats.pool_reuse_count > first_reuse
    # close() shuts the pool down and is idempotent; the pipeline
    # stays usable and lazily recreates the pool
    compiled.close()
    assert compiled._pool is None
    compiled.close()
    compiled.execute(dict(inputs))
    assert compiled._pool is not None
    compiled.close()


def test_pipeline_context_manager_closes_pool():
    pipe = _cycle_pipe(2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES), num_threads=2)
    inputs = _inputs(pipe, 2, 32)
    with compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    ) as compiled:
        compiled.execute(dict(inputs))
        assert compiled._pool is not None
    assert compiled._pool is None


def test_temp_arena_peak_accounting():
    pipe = _cycle_pipe(2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    assert compiled.stats.temp_bytes_peak == 0
    compiled.execute(dict(_inputs(pipe, 2, 32)))
    plan = compiled._kernel_plan
    bound = plan.arena_bytes() + plan.scratch_bytes()
    # single-threaded: one workspace, lazily filled, bounded by the
    # plan-time sizing
    assert 0 < compiled.stats.temp_bytes_peak <= bound
    # steady state allocates nothing new
    peak = compiled.stats.temp_bytes_peak
    compiled.execute(dict(_inputs(pipe, 2, 32)))
    assert compiled.stats.temp_bytes_peak == peak
    compiled.close()


def test_temp_arena_limit_forces_fallback():
    pipe = _cycle_pipe(2, 32)
    inputs = _inputs(pipe, 2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    planned = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    limited = compile_pipeline(
        pipe.output, pipe.params, cfg.with_(temp_arena_limit=1),
        name=pipe.name, cache=False,
    )
    # a 1-byte arena cap is unsatisfiable: plan abandoned, interpreter
    # fallback still produces identical results
    assert limited._kernel_plan is None
    a = planned.execute(dict(inputs))[pipe.output.name]
    b = limited.execute(dict(inputs))[pipe.output.name]
    assert np.array_equal(a, b)
    planned.close()


def test_fault_injector_uses_unplanned_path():
    pipe = _cycle_pipe(2, 32)
    cfg = polymg_opt_plus(tile_sizes=dict(SMALL_TILES))
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    assert compiled._kernel_plan is not None
    seen = []
    compiled.fault_injector = lambda stage, out: seen.append(stage.name)
    compiled.execute(dict(_inputs(pipe, 2, 32)))
    # the per-stage hook fired, proving the planned path was bypassed
    assert seen


def test_plan_disabled_by_config():
    pipe = _cycle_pipe(2, 32)
    cfg = PolyMgConfig(
        tile_sizes=dict(SMALL_TILES), kernel_plan=False
    )
    compiled = compile_pipeline(
        pipe.output, pipe.params, cfg, name=pipe.name, cache=False
    )
    assert compiled._kernel_plan is None
    assert compiled.plan() is None
