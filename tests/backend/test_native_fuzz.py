"""Native-vs-planned parity fuzzing (the PR-5 correctness net).

The native C/OpenMP JIT backend must compute the same answers as the
planned numpy backend on every pipeline it claims to lower: multigrid
V/W-cycles in 2-D and 3-D, the NAS MG cycle, several thread counts,
and randomly generated stencil DAGs with mixed stencil extents (ghost
widths up to 2 in each direction).  Differences are bounded by tight
``allclose`` tolerances rather than bit equality — ``-O3
-march=native`` is free to reassociate floating-point sums.

Every test here degrades gracefully on a machine without a C
toolchain: parity tests skip with a notice, and the fallback test
asserts the planned path still answers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.native import discover_compiler, unlowerable_reason
from repro.backend.registry import TIERS
from repro.compiler import compile_pipeline
from repro.lang.expr import Case
from repro.lang.function import Function, Grid
from repro.lang.parameters import Interval, Parameter, Variable
from repro.lang.stencil import Stencil
from repro.lang.types import Double, Float, Int
from repro.multigrid.cycles import build_poisson_cycle
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.multigrid.reference import MultigridOptions
from repro.variants import polymg_native, polymg_opt_plus

HAVE_CC = discover_compiler() is not None
needs_cc = pytest.mark.skipif(
    not HAVE_CC, reason="no C toolchain on PATH (cc/gcc/clang)"
)

RTOL, ATOL = 1e-9, 1e-11

TILES = {2: (8, 16), 3: (4, 8, 8)}

#: every registered JIT tier is fuzzed — a future second JIT backend
#: joins this suite by registering with ``jit_build=True``
JIT_TIERS = tuple(
    name for name in TIERS.names() if TIERS.resolve(name).jit_build
)


def _cycle_case(ndim: int, cycle: str, n: int, smoothing, levels=3):
    pipe = build_poisson_cycle(
        ndim,
        n,
        MultigridOptions(
            cycle=cycle,
            n1=smoothing[0],
            n2=smoothing[1],
            n3=smoothing[2],
            levels=levels,
        ),
    )
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * ndim
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    return pipe, inputs


def _run_both(pipe, inputs, threads: int, tier: str = "native"):
    """Execute the pipeline through planned numpy and the given JIT
    tier, returning (planned_out, jit_out, jit_compiled)."""
    planned = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_opt_plus(tile_sizes=dict(TILES), num_threads=threads),
        name=pipe.name,
        cache=False,
    )
    expected = planned.execute(dict(inputs))[pipe.output.name]
    native = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_opt_plus(
            backend=tier, tile_sizes=dict(TILES), num_threads=threads
        ),
        name=pipe.name,
        cache=False,
    )
    TIERS.resolve(tier).ensure_ready(native)
    got = native.execute(dict(inputs))[pipe.output.name]
    return expected, got, native


@needs_cc
@pytest.mark.parametrize("tier", JIT_TIERS)
@pytest.mark.parametrize(
    "ndim,cycle,n,smoothing,threads",
    [
        (2, "V", 32, (4, 4, 4), 1),
        (2, "V", 32, (10, 0, 0), 4),
        (2, "W", 32, (4, 4, 4), 2),
        (2, "W", 16, (2, 2, 2), 1),
        (3, "V", 16, (4, 4, 4), 2),
        (3, "W", 16, (2, 2, 2), 4),
    ],
)
def test_jit_tiers_match_planned_on_multigrid_cycles(
    tier, ndim, cycle, n, smoothing, threads
):
    pipe, inputs = _cycle_case(ndim, cycle, n, smoothing)
    expected, got, native = _run_both(pipe, inputs, threads, tier)
    assert native.stats.tier(tier).executions == 1
    assert native.stats.tier(tier).fallbacks == 0
    assert got.shape == expected.shape
    assert np.allclose(got, expected, rtol=RTOL, atol=ATOL)


@needs_cc
@pytest.mark.parametrize("threads", [1, 2])
def test_native_matches_planned_on_nas_mg(threads):
    n = 16
    pipe = build_nas_mg_cycle(n)
    rng = np.random.default_rng(20170712)
    shape = (n + 2,) * 3
    inputs = pipe.make_inputs(
        rng.standard_normal(shape), rng.standard_normal(shape)
    )
    expected, got, native = _run_both(pipe, inputs, threads)
    assert native.stats.native_executions == 1
    assert np.allclose(got, expected, rtol=RTOL, atol=ATOL)


@needs_cc
def test_native_is_deterministic_across_repeat_executes():
    pipe, inputs = _cycle_case(2, "V", 32, (2, 2, 2))
    native = compile_pipeline(
        pipe.output,
        pipe.params,
        polymg_native(tile_sizes=dict(TILES), num_threads=2),
        name=pipe.name,
        cache=False,
    )
    native.ensure_native()
    first = native.execute(dict(inputs))[pipe.output.name]
    for _ in range(3):
        again = native.execute(dict(inputs))[pipe.output.name]
        assert np.array_equal(again, first)


# ---------------------------------------------------------------------------
# random stencil DAGs (ghost widths up to 2, mixed boundary handling)
# ---------------------------------------------------------------------------

N_VAL = 20


def _weights(draw, lo=1, hi=5):
    w = st.integers(-3, 3)
    rows = draw(st.integers(lo, hi))
    cols = draw(st.integers(lo, hi))
    return [[draw(w) for _ in range(cols)] for _ in range(rows)]


@st.composite
def stencil_pipelines(draw):
    """A random feed-forward stencil pipeline over one input grid;
    stencil extents up to 5x5 exercise ghost widths 0..2."""
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Double, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    interior = (y >= 2) & (y <= n - 1) & (x >= 2) & (x <= n - 1)

    stages = [g]
    for i in range(draw(st.integers(2, 5))):
        src_a = stages[draw(st.integers(0, len(stages) - 1))]
        src_b = stages[draw(st.integers(0, len(stages) - 1))]
        expr = Stencil(
            src_a, (y, x), _weights(draw), draw(st.floats(0.1, 1.0))
        )
        if draw(st.booleans()):
            expr = expr + src_b(y, x) * draw(st.floats(-1.0, 1.0))
        f = Function(([y, x], [ext, ext]), Double, f"s{i}")
        if draw(st.booleans()):
            f.defn = [Case(interior, expr), src_a(y, x)]
        else:
            f.defn = [Case(interior, expr), 0.0]
        stages.append(f)
    return stages[-1]


@needs_cc
@settings(max_examples=15, deadline=None)
@given(stencil_pipelines(), st.sampled_from([(4, 8), (8, 8), (6, 10)]))
def test_native_matches_planned_on_random_dags(out_fn, tiles):
    rng = np.random.default_rng(99)
    inputs = {"G": rng.standard_normal((N_VAL + 2, N_VAL + 2))}
    cfg_kw = dict(
        tile_sizes={2: tiles}, overlap_threshold=2.0, num_threads=2
    )
    planned = compile_pipeline(
        out_fn, {"N": N_VAL}, polymg_opt_plus(**cfg_kw), cache=False
    )
    expected = planned.execute(inputs)[out_fn.name]
    native = compile_pipeline(
        out_fn, {"N": N_VAL}, polymg_native(**cfg_kw), cache=False
    )
    native.ensure_native()
    got = native.execute(inputs)[out_fn.name]
    assert native.stats.native_executions == 1, (
        native._native_disabled
    )
    assert np.allclose(got, expected, rtol=RTOL, atol=ATOL)


# ---------------------------------------------------------------------------
# dtype gate: non-double pipelines stay on the numpy backend
# ---------------------------------------------------------------------------


def _float32_pipeline():
    n = Parameter(Int, "N")
    y, x = Variable("y"), Variable("x")
    g = Grid(Float, "G", [n + 2, n + 2])
    ext = Interval(Int, 0, n + 1)
    interior = (y >= 1) & (y <= n) & (x >= 1) & (x <= n)
    f = Function(([y, x], [ext, ext]), Float, "blur32")
    f.defn = [
        Case(
            interior,
            Stencil(g, (y, x), [[1, 2, 1], [2, 4, 2], [1, 2, 1]], 1 / 16),
        ),
        g(y, x),
    ]
    return f


def test_float32_pipeline_is_unlowerable_and_falls_back():
    out = _float32_pipeline()
    cfg = polymg_native(tile_sizes={2: (8, 8)}, num_threads=1)
    compiled = compile_pipeline(out, {"N": 16}, cfg, cache=False)
    assert unlowerable_reason(compiled) is not None
    rng = np.random.default_rng(7)
    data = rng.standard_normal((18, 18)).astype(np.float32)
    result = compiled.execute({"G": data})["blur32"]
    # fell back to the numpy backend: correct answer, visible incident
    assert result.dtype == np.float32
    assert compiled.stats.native_executions == 0
    assert compiled.stats.native_fallbacks >= 1
    kinds = [rec["kind"] for rec in compiled.report.incidents]
    assert "native-fallback" in kinds

    reference = compile_pipeline(
        out,
        {"N": 16},
        polymg_opt_plus(tile_sizes={2: (8, 8)}),
        cache=False,
    ).execute({"G": data})["blur32"]
    assert np.array_equal(result, reference)
