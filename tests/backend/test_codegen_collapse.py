"""Tests for collapse-depth analysis in the C emitter (section 3.2.5)."""

from repro.backend.codegen_c import _Emitter, generate_c
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.multigrid.nas_mg import build_nas_mg_cycle
from repro.variants import polymg_naive, polymg_opt_plus


class TestCollapseDepth:
    def test_pointwise_full_collapse(self):
        pipe = build_poisson_cycle(
            2, 16, MultigridOptions(cycle="V", n1=1, n2=1, n3=1, levels=2)
        )
        compiled = pipe.compile(polymg_naive())
        emitter = _Emitter(compiled)
        # the restrict stage is a single unconditional definition:
        # perfect nest, collapse over every dimension
        restrict = next(
            s
            for s in compiled.dag.stages
            if s.stage_kind() == "restrict"
        )
        assert emitter.collapse_depth(restrict) == 2
        # piecewise (Case) stages leave only the outer loop perfect
        smooth = next(
            s for s in compiled.dag.stages if s.stage_kind() == "smooth"
        )
        assert emitter.collapse_depth(smooth) == 1

    def test_3d_tiled_collapse_three(self):
        pipe = build_nas_mg_cycle(16, levels=3)
        compiled = pipe.compile(polymg_opt_plus(tile_sizes={3: (4, 8, 8)}))
        code = generate_c(compiled)
        assert "collapse(3)" in code
