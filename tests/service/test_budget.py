"""FleetBudget: graded overload levels and their audit trail."""

from __future__ import annotations

import pytest

from repro.resilience import IncidentLog
from repro.service import OVERLOAD_LEVELS, FleetBudget


@pytest.fixture
def budget():
    return FleetBudget(max_bytes=1000, log=IncidentLog())


class TestLevels:
    def test_level_order(self):
        assert OVERLOAD_LEVELS == ("normal", "defer", "degrade", "shed")

    def test_graded_escalation_and_relaxation(self, budget):
        assert budget.level() == "normal"
        assert budget.reserve(600, 1) == "defer"
        assert budget.reserve(200, 1) == "degrade"
        assert budget.reserve(150, 1) == "shed"
        assert budget.release(600, 1) == "normal"

    def test_unbounded_meter_contributes_nothing(self):
        budget = FleetBudget()  # no caps at all
        assert budget.reserve(10**12, 10**6) == "normal"
        assert budget.utilization() == 0.0

    def test_worse_meter_wins(self):
        budget = FleetBudget(max_bytes=1000, max_cycles=10)
        budget.reserve(100, 7)  # bytes at 10%, cycles at 70%
        assert budget.level() == "defer"
        assert budget.utilization() == pytest.approx(0.7)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FleetBudget(defer_at=0.9, degrade_at=0.5)


class TestAuditTrail:
    def test_transitions_are_incidents(self, budget):
        budget.reserve(990, 1)  # normal -> shed in one jump
        budget.release(990, 1)
        kinds = [(r.kind, r.action) for r in budget.log.records]
        assert ("overload", "normal->shed") in kinds
        assert ("overload", "shed->normal") in kinds
        directions = [
            r.details["direction"]
            for r in budget.log.records
            if r.kind == "overload"
        ]
        assert directions == ["escalate", "relax"]

    def test_no_incident_without_transition(self, budget):
        budget.reserve(10, 1)
        budget.release(10, 1)
        assert budget.log.records == []

    def test_on_transition_hooks_fire(self, budget):
        seen = []
        budget.on_transition.append(lambda old, new: seen.append((old, new)))
        budget.reserve(700, 1)
        budget.release(700, 1)
        assert seen == [("normal", "defer"), ("defer", "normal")]

    def test_hooks_may_reenter_the_budget(self, budget):
        # hooks fire after the internal (non-reentrant) lock is
        # released, so a hook calling back into the budget must not
        # deadlock and sees the post-transition state
        seen = []

        def hook(old, new):
            seen.append((old, new, budget.level(),
                         budget.snapshot()["level"]))

        budget.on_transition.append(hook)
        assert budget.reserve(700, 1) == "defer"
        budget.release(700, 1)
        assert seen == [
            ("normal", "defer", "defer", "defer"),
            ("defer", "normal", "normal", "normal"),
        ]


class TestAccounting:
    def test_release_never_goes_negative(self, budget):
        budget.release(500, 5)
        snap = budget.snapshot()
        assert snap["outstanding_bytes"] == 0
        assert snap["outstanding_cycles"] == 0
        assert snap["reservations"] == 0

    def test_peak_utilization_is_sticky(self, budget):
        budget.reserve(900, 1)
        budget.release(900, 1)
        assert budget.snapshot()["peak_utilization"] == pytest.approx(0.9)

    def test_snapshot_shape(self, budget):
        snap = budget.snapshot()
        assert set(snap) == {
            "level",
            "utilization",
            "peak_utilization",
            "outstanding_bytes",
            "outstanding_cycles",
            "reservations",
            "max_bytes",
            "max_cycles",
        }
