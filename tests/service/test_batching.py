"""Same-spec request coalescing through the batched execution tier.

A worker that pops a fresh request also claims queued requests with the
same pipeline specification and solves them in lockstep through
``BatchedPlannedBackend`` — one ladder selection, one kernel-tape walk,
many right-hand sides.  These tests pin the contract: coalesced solves
are bitwise identical to per-request solves, per-request budgets and
tolerances still apply inside a batch, ineligible requests never
coalesce, and the accounting (``coalesced`` counter, ``healthz`` tier
section) is visible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.multigrid.reference import MultigridOptions
from repro.service import ServiceConfig, SolveRequest, SolveService
from repro.service.admission import BoundedRequestQueue, TenantPolicy

N = 16
OPTS = MultigridOptions(levels=3)
OVERRIDES = {"tile_sizes": {2: (8, 16), 3: (4, 8, 8)}}


def _rhs(seed):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((N + 2, N + 2))


def _request(seed, *, tenant="t", opts=OPTS, **kw):
    kw.setdefault("max_cycles", 4)
    return SolveRequest(
        tenant=tenant, ndim=2, N=N, f=_rhs(seed), opts=opts, **kw
    )


def _service(**cfg_kw):
    cfg_kw.setdefault("workers", 1)
    cfg_kw.setdefault("queue_capacity", 32)
    cfg_kw.setdefault("config_overrides", dict(OVERRIDES))
    cfg_kw.setdefault(
        "default_tenant_policy", TenantPolicy(max_concurrent=32)
    )
    return SolveService(ServiceConfig(**cfg_kw))


# ---------------------------------------------------------------------------
# queue surface
# ---------------------------------------------------------------------------


def test_pop_matching_takes_best_first_and_respects_limit():
    q = BoundedRequestQueue(8)
    for i, rank in enumerate([2, 0, 1, 2, 0]):
        q.push(("item", i, rank), rank)
    taken = q.pop_matching(lambda it: it[2] != 1, 3)
    # best-priority-first, FIFO within a class, predicate applied
    assert [it[1] for it in taken] == [1, 4, 0]
    assert len(q) == 2
    assert q.pop_matching(lambda it: False, 5) == []
    assert len(q) == 2


def test_pop_matching_with_nonpositive_limit_is_a_noop():
    q = BoundedRequestQueue(4)
    q.push("a", 0)
    assert q.pop_matching(lambda it: True, 0) == []
    assert len(q) == 1


# ---------------------------------------------------------------------------
# coalesced execution
# ---------------------------------------------------------------------------


def test_coalesced_solves_are_bitwise_equal_to_per_request():
    # pin both fleets to planned rungs: batched execution always walks
    # the planned kernel tapes, so per-request native JIT executions
    # (free to reassociate floats) are not the comparison baseline
    rungs = ("polymg-opt+", "polymg-naive")
    seeds = [1, 2, 3, 4, 5]
    with _service(batch_max=4, ladder_variants=rungs) as svc:
        tickets = [svc.submit(_request(s)) for s in seeds]
        batched = [t.result(timeout=60) for t in tickets]
        assert svc.coalesced > 0
        assert svc.completed == len(seeds)
    with _service(batch_max=1, ladder_variants=rungs) as svc:
        singly = [
            svc.submit(_request(s)).result(timeout=60) for s in seeds
        ]
        assert svc.coalesced == 0
    for a, b in zip(batched, singly):
        assert a.status == b.status
        assert np.array_equal(a.u, b.u)
        assert a.residual_norms == b.residual_norms


def test_batches_never_select_a_jit_rung():
    from repro.backend.registry import TIERS

    with _service(batch_max=4) as svc:
        # keep the single worker busy on a different spec so the three
        # same-spec requests are all queued when it next pops
        blocker = svc.submit(
            _request(9, opts=MultigridOptions(levels=3, n1=2))
        )
        tickets = [svc.submit(_request(s)) for s in (1, 2, 3)]
        blocker.result(timeout=60)
        results = [t.result(timeout=60) for t in tickets]
        assert svc.coalesced == 3
    for result in results:
        assert result.variant_trail  # at least one executed cycle
        for rung in result.variant_trail:
            tier = TIERS.tier_of_rung(rung)
            assert tier is not None and not tier.jit_build


def test_different_specs_never_coalesce():
    other = MultigridOptions(levels=3, n1=1)
    with _service(batch_max=4) as svc:
        tickets = [
            svc.submit(_request(1)),
            svc.submit(_request(2, opts=other)),
            svc.submit(_request(3, opts=other)),
        ]
        for t in tickets:
            t.result(timeout=60)
        healthz = svc.healthz()
    # the two `other` requests may coalesce with each other but never
    # with the first spec
    assert healthz["counters"]["coalesced"] in (0, 2)


def test_fault_hook_disables_coalescing():
    calls = []

    def hook(supervisor, request):
        calls.append(request.request_id)

    with _service(batch_max=4, fault_hook=hook) as svc:
        tickets = [svc.submit(_request(s)) for s in (1, 2, 3)]
        for t in tickets:
            t.result(timeout=60)
        assert svc.coalesced == 0
    assert len(calls) >= 3


def test_per_request_tolerances_apply_inside_a_batch():
    with _service(batch_max=4) as svc:
        loose = svc.submit(_request(1, tol=1e30, max_cycles=6))
        tight = svc.submit(_request(2, tol=None, max_cycles=6))
        r_loose = loose.result(timeout=60)
        r_tight = tight.result(timeout=60)
    assert r_loose.status == "converged"
    assert r_loose.cycles == 1
    assert r_tight.status == "cycle-budget"
    assert r_tight.cycles == 6


def test_healthz_reports_per_tier_health():
    with _service(batch_max=4) as svc:
        svc.submit(_request(1)).result(timeout=60)
        healthz = svc.healthz()
    from repro.backend.registry import TIERS

    tiers = healthz["tiers"]
    assert set(tiers) == set(TIERS.names())
    for section in tiers.values():
        assert {"breaker", "executions", "rungs"} <= set(section)


def test_batch_members_resolve_under_drain():
    # a drain mid-batch preempts every member; each resolves with a
    # typed error or a completed result — nothing hangs
    with _service(batch_max=4) as svc:
        tickets = [
            svc.submit(_request(s, max_cycles=50)) for s in (1, 2, 3)
        ]
        svc.drain(timeout=0.01)
        for t in tickets:
            assert t.done()
            assert t.state in ("done", "failed")


@pytest.mark.parametrize("priority", ["high", "normal"])
def test_mixed_priorities_still_coalesce_when_unceilinged(priority):
    with _service(batch_max=4) as svc:
        tickets = [
            svc.submit(_request(1, priority=priority)),
            svc.submit(_request(2)),
            svc.submit(_request(3)),
        ]
        for t in tickets:
            t.result(timeout=60)
        assert svc.completed == 3
