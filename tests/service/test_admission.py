"""Admission control: token buckets, concurrency caps, bounded queue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    AdmissionDeferred,
    QueueSaturated,
    ServiceOverloaded,
    TenantConcurrencyExceeded,
    TenantRateLimited,
)
from repro.resilience import IncidentLog
from repro.service import (
    AdmissionController,
    BoundedRequestQueue,
    FleetBudget,
    SolveRequest,
    TenantPolicy,
    TokenBucket,
)

from ..conftest import make_rhs


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def request(
    rng, tenant="t", priority="normal", n=8, request_id=None, **kw
):
    return SolveRequest(
        tenant=tenant,
        ndim=2,
        N=n,
        f=make_rhs(rng, 2, n),
        priority=priority,
        **({"request_id": request_id} if request_id else {}),
        **kw,
    )


class TestTokenBucket:
    def test_burst_then_rate(self, clock):
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(1.0)
        clock.advance(wait)
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        bucket.try_acquire()
        bucket.try_acquire()
        assert bucket.try_acquire() > 0.0  # burst, not rate*dt

    def test_unlimited(self, clock):
        bucket = TokenBucket(rate=None, clock=clock)
        assert all(bucket.try_acquire() == 0.0 for _ in range(100))

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, clock=clock)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5, clock=clock)


class TestBoundedRequestQueue:
    def test_priority_order_fifo_within_class(self):
        q = BoundedRequestQueue(capacity=8)
        q.push("n1", 1)
        q.push("h1", 0)
        q.push("n2", 1)
        assert [q.pop(0.0) for _ in range(3)] == ["h1", "n1", "n2"]

    def test_full_queue_sheds_strictly_lower_priority(self):
        q = BoundedRequestQueue(capacity=2)
        q.push("low1", 2)
        q.push("low2", 2)
        victim = q.push("high", 0)
        assert victim == "low2"  # the youngest of the worst class
        assert len(q) == 2

    def test_full_queue_refuses_equal_or_better_rank(self):
        q = BoundedRequestQueue(capacity=1)
        q.push("a", 1)
        with pytest.raises(QueueSaturated):
            q.push("b", 1)
        with pytest.raises(QueueSaturated):
            q.push("c", 2)

    def test_force_push_ignores_capacity(self):
        q = BoundedRequestQueue(capacity=1)
        q.push("a", 1)
        assert q.push("requeued", 1, force=True) is None
        assert len(q) == 2

    def test_pop_timeout_returns_none(self):
        q = BoundedRequestQueue(capacity=1)
        assert q.pop(timeout=0.01) is None

    def test_drain_items_empties_in_priority_order(self):
        q = BoundedRequestQueue(capacity=4)
        q.push("low", 2)
        q.push("high", 0)
        assert q.drain_items() == ["high", "low"]
        assert len(q) == 0


class TestAdmissionGates:
    def make(self, clock, *, max_bytes=None, **policies):
        log = IncidentLog()
        budget = FleetBudget(max_bytes=max_bytes, log=log)
        controller = AdmissionController(
            budget=budget,
            default_policy=policies.pop(
                "default", TenantPolicy(rate=None, max_concurrent=100)
            ),
            tenant_policies=policies.pop("tenants", None),
            log=log,
            clock=clock,
        )
        return controller, budget, log

    def test_rate_limit_with_retry_hint(self, rng, clock):
        controller, _, log = self.make(
            clock, default=TenantPolicy(rate=1.0, burst=1.0)
        )
        controller.admit(request(rng))
        with pytest.raises(TenantRateLimited) as exc:
            controller.admit(request(rng))
        assert exc.value.retry_after == pytest.approx(1.0)
        clock.advance(1.0)
        controller.admit(request(rng))  # token refilled
        assert controller.rejections == {"tenant-rate": 1}
        assert any(r.kind == "admission-reject" for r in log.records)

    def test_concurrency_cap_and_release(self, rng, clock):
        controller, _, _ = self.make(
            clock, default=TenantPolicy(max_concurrent=2)
        )
        first = request(rng)
        controller.admit(first)
        controller.admit(request(rng))
        with pytest.raises(TenantConcurrencyExceeded):
            controller.admit(request(rng))
        controller.release(first, outcome="completed")
        controller.admit(request(rng))  # slot freed

    def test_tenants_are_isolated(self, rng, clock):
        controller, _, _ = self.make(
            clock,
            default=TenantPolicy(max_concurrent=1),
        )
        controller.admit(request(rng, tenant="a"))
        controller.admit(request(rng, tenant="b"))  # b unaffected by a
        with pytest.raises(TenantConcurrencyExceeded):
            controller.admit(request(rng, tenant="a"))

    def test_overload_shed_spares_high_priority(self, rng, clock):
        controller, budget, _ = self.make(clock, max_bytes=1000)
        budget.reserve(990, 1)  # shed level
        with pytest.raises(ServiceOverloaded):
            controller.admit(request(rng, priority="normal"))
        with pytest.raises(ServiceOverloaded):
            controller.admit(request(rng, priority="low"))
        controller.admit(request(rng, priority="high", n=2))

    def test_overload_defer_refuses_low_priority_only(self, rng, clock):
        controller, budget, _ = self.make(clock, max_bytes=10**7)
        budget.reserve(int(0.65 * 10**7), 1)  # defer level
        with pytest.raises(AdmissionDeferred) as exc:
            controller.admit(request(rng, priority="low"))
        assert exc.value.retry_after is not None
        controller.admit(request(rng, priority="normal"))

    def test_admission_reserves_budget(self, rng, clock):
        controller, budget, _ = self.make(clock, max_bytes=10**9)
        req = request(rng)
        controller.admit(req)
        snap = budget.snapshot()
        assert snap["outstanding_bytes"] == req.estimated_bytes()
        assert snap["outstanding_cycles"] == req.max_cycles
        controller.release(req)
        assert budget.snapshot()["outstanding_bytes"] == 0

    def test_usage_accounting(self, rng, clock):
        controller, _, _ = self.make(clock)
        req = request(rng, tenant="acct")
        controller.admit(req)
        controller.release(req, outcome="completed")
        usage = controller.tenant_usage()["acct"]
        assert usage["submitted"] == 1
        assert usage["completed"] == 1
        assert usage["in_flight"] == 0


class TestRequestValidation:
    def test_bad_priority(self, rng):
        with pytest.raises(Exception, match="priority"):
            request(rng, priority="urgent")

    def test_bad_shape(self, rng):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="shape"):
            SolveRequest(
                tenant="t", ndim=2, N=8, f=np.zeros((3, 3))
            )

    def test_estimated_bytes_scales_with_grid(self, rng):
        small = request(rng, n=8).estimated_bytes()
        big = request(rng, n=16).estimated_bytes()
        assert big > small
        assert small == 6 * 8 * 10**2
