"""Drain and worker-kill while a *coalesced* batch is in flight.

A batch couples several tickets to one worker, so the preemption paths
have more to lose than the per-request ones: a drain must persist a
checkpoint for **every** member (and release every admission slot), a
worker kill must requeue every member with its checkpoint so the solves
finish on the respawned worker, and in neither case may a ticket leak —
every submitted id resolves, the in-flight map empties, and failed ids
leave the idempotency map.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import SolvePreempted
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

from ..conftest import make_rhs

N = 16
OPTS = MultigridOptions(levels=3)
BLOCKER_OPTS = MultigridOptions(levels=3, n1=2)
# planned rungs only: batches never select a JIT rung anyway, and a
# pinned ladder keeps the timing deterministic
LADDER = ("polymg-opt+", "polymg-naive")
OVERRIDES = {"tile_sizes": {2: (8, 16)}}


def _config(tmp_path, **kw) -> ServiceConfig:
    base = dict(
        workers=1,
        queue_capacity=32,
        batch_max=4,
        config_overrides=dict(OVERRIDES),
        ladder_variants=LADDER,
        checkpoint_dir=str(tmp_path / "checkpoints"),
        default_tenant_policy=TenantPolicy(rate=None, max_concurrent=32),
    )
    base.update(kw)
    return ServiceConfig(**base)


def _request(rng, request_id, *, opts=OPTS, **kw) -> SolveRequest:
    kw.setdefault("max_cycles", 4)
    return SolveRequest(
        tenant="t1",
        ndim=2,
        N=N,
        f=make_rhs(rng, 2, N),
        opts=opts,
        request_id=request_id,
        **kw,
    )


def _submit_in_flight_batch(svc, rng, member_cycles):
    """Pin the single worker on a different spec, queue three same-spec
    requests behind it, and wait until they run as one batch."""
    blocker = svc.submit(
        _request(rng, "blocker", opts=BLOCKER_OPTS, max_cycles=4)
    )
    members = [
        svc.submit(
            _request(rng, f"member-{i}", max_cycles=member_cycles,
                     tol=None)
        )
        for i in range(3)
    ]
    blocker.result(timeout=120)
    deadline = time.monotonic() + 60.0
    while svc.coalesced < 3:
        assert time.monotonic() < deadline, "batch never formed"
        time.sleep(0.002)
    assert svc.coalesced == 3
    return blocker, members


def test_drain_mid_batch_persists_every_member(rng, tmp_path):
    svc = SolveService(_config(tmp_path))
    blocker, members = _submit_in_flight_batch(
        svc, rng, member_cycles=5000
    )
    summary = svc.drain(timeout=0.05)
    assert summary["preempted"] == 3

    for i, ticket in enumerate(members):
        assert ticket.done()
        with pytest.raises(SolvePreempted) as exc:
            ticket.result(timeout=1)
        path = exc.value.checkpoint_path
        assert path is not None
        assert path.endswith(f"member-{i}.ckpt.npz")
        assert exc.value.context["cycle"] >= 0
    ckpts = sorted(
        p.name for p in (tmp_path / "checkpoints").glob("*.ckpt.npz")
    )
    assert ckpts == [f"member-{i}.ckpt.npz" for i in range(3)]

    # no ticket leaks: nothing in flight, nothing queued, failed ids
    # left the idempotency map (only the completed blocker remains),
    # and every admission slot was handed back
    assert svc._in_flight == {}
    assert len(svc._queue) == 0
    assert set(svc._tickets) == {"blocker"}
    assert svc.admission.tenant_usage()["t1"]["in_flight"] == 0


def test_drained_batch_members_resume_in_a_fresh_service(
    rng, tmp_path
):
    first = SolveService(_config(tmp_path))
    _submit_in_flight_batch(first, rng, member_cycles=40)
    first.drain(timeout=0.05)

    second = SolveService(_config(tmp_path))
    try:
        tickets = second.recover()
        assert sorted(t.request.request_id for t in tickets) == [
            "member-0", "member-1", "member-2",
        ]
        for ticket in tickets:
            result = ticket.result(timeout=120)
            assert result.status in ("converged", "cycle-budget")
            # cycle numbering carried over the checkpoint: the resumed
            # solve never exceeds one uninterrupted solve's budget
            assert len(result.residual_norms) - 1 <= 40
        leftovers = list(
            (tmp_path / "checkpoints").glob("*.ckpt.npz")
        )
        assert leftovers == []
    finally:
        second.drain(timeout=10.0)


def test_worker_kill_mid_batch_requeues_members_with_checkpoints(
    rng, tmp_path
):
    svc = SolveService(_config(tmp_path))
    try:
        blocker, members = _submit_in_flight_batch(
            svc, rng, member_cycles=800
        )
        victim = svc.kill_worker()
        assert victim == 0
        for ticket in members:
            result = ticket.result(timeout=240)
            assert result.status in ("converged", "cycle-budget")
            assert len(result.residual_norms) - 1 <= 800
        assert svc.completed == 4  # blocker + all three members

        kinds = [r.kind for r in svc.log.records]
        assert "worker-kill" in kinds
        assert "worker-respawn" in kinds
        requeued = [
            r
            for r in svc.log.records
            if r.kind == "batch" and r.action == "requeued"
        ]
        assert len(requeued) == 3
        for record in requeued:
            assert record.cycle is not None  # checkpoint travelled

        # no ticket leaks after recovery-by-requeue either
        assert svc._in_flight == {}
        assert len(svc._queue) == 0
        for ticket in members:
            assert ticket.done() and ticket.state == "done"
    finally:
        svc.drain(timeout=10.0)
