"""Service-level sandbox wiring: config default, health, kill details.

Serving untrusted-adjacent JIT artifacts in-process is exactly the
failure mode the sandbox exists for, so the *service* defaults to
``native_isolation="sandbox"`` (batch/CLI use keeps the library
default of ``"none"``), reports pool state in ``healthz()``, and tags
its worker-kill incidents with the same snapshot.
"""

from __future__ import annotations

import pytest

from repro.backend.sandbox import reset_sandbox_pool
from repro.config import PolyMgConfig
from repro.service import ServiceConfig, SolveService
from repro.service.admission import TenantPolicy


@pytest.fixture(autouse=True)
def _fresh_pool():
    # the sandbox pool is a process-wide singleton: an earlier suite's
    # native execution would otherwise leak an enabled pool into the
    # "never created" assertions below
    reset_sandbox_pool()
    yield
    reset_sandbox_pool()


def _service(**cfg_kw) -> SolveService:
    cfg_kw.setdefault("workers", 1)
    cfg_kw.setdefault("queue_capacity", 8)
    cfg_kw.setdefault(
        "default_tenant_policy", TenantPolicy(max_concurrent=8)
    )
    return SolveService(ServiceConfig(**cfg_kw))


def test_library_default_is_no_isolation():
    assert PolyMgConfig().native_isolation == "none"


def test_service_defaults_to_sandbox_isolation():
    assert ServiceConfig().native_isolation == "sandbox"
    with _service() as svc:
        assert (
            svc.config.config_overrides["native_isolation"] == "sandbox"
        )


def test_explicit_override_beats_the_service_default():
    with _service(
        config_overrides={"native_isolation": "none"}
    ) as svc:
        assert (
            svc.config.config_overrides["native_isolation"] == "none"
        )


def test_healthz_reports_sandbox_pool_state():
    with _service() as svc:
        health = svc.healthz()
    # no native execution happened, so the pool was never created —
    # and healthz must not create it
    assert health["sandbox"] == {"enabled": False}


def test_worker_kill_incident_carries_sandbox_snapshot():
    with _service() as svc:
        svc.kill_worker(0)
        records = [
            r for r in svc.log.records if r.kind == "worker-kill"
        ]
    assert len(records) == 1
    assert records[0].details["sandbox"] == {"enabled": False}
