"""SolveService end-to-end: multiplexing, robustness, typed refusals."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import (
    CompileError,
    NativeBackendError,
    NumericalDivergenceError,
    TenantConcurrencyExceeded,
    TenantRateLimited,
)
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

from ..conftest import make_rhs

N = 16
OPTS = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4, omega=0.8)
# planned numpy rungs only: deterministic and toolchain-independent
LADDER = ("polymg-opt+", "polymg-naive")
OVERRIDES = {"tile_sizes": {2: (8, 16), 3: (4, 4, 8)}}


def config(**kw) -> ServiceConfig:
    base = dict(
        workers=2,
        queue_capacity=8,
        config_overrides=OVERRIDES,
        ladder_variants=LADDER,
        default_tenant_policy=TenantPolicy(rate=None, max_concurrent=32),
    )
    base.update(kw)
    return ServiceConfig(**base)


def req(rng, *, tenant="t1", ndim=2, n=N, **kw) -> SolveRequest:
    return SolveRequest(
        tenant=tenant,
        ndim=ndim,
        N=n,
        f=make_rhs(rng, ndim, n),
        opts=OPTS,
        **kw,
    )


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def service():
    svc = SolveService(config())
    yield svc
    svc.drain(timeout=10.0)


class TestMultiplexing:
    def test_concurrent_mixed_dimension_traffic(self, rng, service):
        requests = [
            req(rng, tenant=f"tenant-{i % 3}", ndim=2 + (i % 2), n=N)
            for i in range(8)
        ]
        tickets = [service.submit(r) for r in requests]
        for ticket, request in zip(tickets, requests):
            result = ticket.result(timeout=120)
            assert result.status in ("converged", "cycle-budget")
            assert np.isfinite(result.residual_norms[-1])
            # the solve actually reduced the residual
            assert (
                result.residual_norms[-1] < result.residual_norms[0]
            )
        assert service.completed == 8

    def test_pipeline_shared_across_tenants(self, rng, service):
        a = service.submit(req(rng, tenant="a"))
        b = service.submit(req(rng, tenant="b"))
        a.result(timeout=120)
        b.result(timeout=120)
        # same spec -> one built pipeline, shared
        assert len(service._pipelines) == 1

    def test_result_is_correct_vs_direct_solve(self, rng, service):
        from repro.multigrid.kernels import norm_residual

        request = req(rng, max_cycles=12, tol=1e-9)
        result = service.submit(request).result(timeout=120)
        h = 1.0 / (N + 1)
        check = norm_residual(result.u, request.f, h)
        assert check == pytest.approx(
            result.residual_norms[-1], rel=1e-10
        )


class TestIdempotency:
    def test_resubmission_returns_same_ticket(self, rng, service):
        request = req(rng)
        first = service.submit(request)
        assert service.submit(request) is first
        first.result(timeout=120)
        # even after resolution the id stays bound to the result
        assert service.submit(request) is first

    def test_failed_id_may_be_retried(self, rng):
        calls = []

        def hook(supervisor, request):
            calls.append(request.request_id)
            raise CompileError("injected fatal fault")

        svc = SolveService(config(fault_hook=hook))
        try:
            request = req(rng, request_id="retry-me")
            ticket = svc.submit(request)
            with pytest.raises(CompileError):
                ticket.result(timeout=60)
            # a failed id leaves the idempotency map: same id re-admits
            again = svc.submit(request)
            assert again is not ticket
            with pytest.raises(CompileError):
                again.result(timeout=60)
        finally:
            svc.drain(timeout=10.0)


class TestRetry:
    def test_transient_fault_is_retried_to_success(self, rng):
        failures = {"left": 2}

        def hook(supervisor, request):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise NumericalDivergenceError("injected transient")

        svc = SolveService(config(workers=1, fault_hook=hook))
        try:
            ticket = svc.submit(req(rng))
            result = ticket.result(timeout=120)
            assert result.status in ("converged", "cycle-budget")
            assert ticket.attempts == 3
            kinds = [r.kind for r in svc.log.records]
            assert kinds.count("retry") == 2
        finally:
            svc.drain(timeout=10.0)

    def test_fatal_fault_fails_fast(self, rng):
        def hook(supervisor, request):
            raise CompileError("injected fatal")

        svc = SolveService(config(workers=1, fault_hook=hook))
        try:
            ticket = svc.submit(req(rng))
            with pytest.raises(CompileError):
                ticket.result(timeout=60)
            assert ticket.attempts == 1
            assert svc.failed == 1
        finally:
            svc.drain(timeout=10.0)

    def test_retries_share_one_deadline_budget(self, rng):
        # the deadline is absolute from admission: a retryable fault
        # must not hand the next attempt a fresh clock, or a request
        # with deadline D could consume ~max_attempts*D of solve time
        clock = FakeClock()
        deadlines = []

        def hook(supervisor, request):
            deadlines.append(supervisor.policy.deadline)
            if len(deadlines) == 1:
                clock.advance(10.0)  # burn the whole budget
                raise NativeBackendError("injected transient")

        svc = SolveService(
            config(workers=1, fault_hook=hook), clock=clock
        )
        try:
            ticket = svc.submit(req(rng, deadline=5.0, max_cycles=500))
            result = ticket.result(timeout=60)
            assert result.status == "deadline"
            assert ticket.attempts == 2
            # attempt 1 saw the full budget; attempt 2 the depleted one
            assert deadlines == [5.0, 0.0]
        finally:
            svc.drain(timeout=10.0)

    def test_retries_exhausted_surfaces_the_fault(self, rng):
        def hook(supervisor, request):
            raise NumericalDivergenceError("always diverges")

        svc = SolveService(config(workers=1, fault_hook=hook))
        try:
            ticket = svc.submit(req(rng))
            with pytest.raises(NumericalDivergenceError):
                ticket.result(timeout=60)
            assert ticket.attempts == svc.config.retry.max_attempts
        finally:
            svc.drain(timeout=10.0)


class TestAdmissionIntegration:
    def test_tenant_rate_limit_is_typed(self, rng):
        svc = SolveService(
            config(
                tenant_policies={
                    "limited": TenantPolicy(rate=0.001, burst=1.0)
                }
            )
        )
        try:
            svc.submit(req(rng, tenant="limited"))
            with pytest.raises(TenantRateLimited) as exc:
                svc.submit(req(rng, tenant="limited"))
            assert exc.value.retry_after is not None
        finally:
            svc.drain(timeout=10.0)

    def test_tenant_concurrency_cap(self, rng):
        svc = SolveService(
            config(
                workers=1,
                tenant_policies={
                    "capped": TenantPolicy(max_concurrent=1)
                },
            )
        )
        try:
            first = svc.submit(req(rng, tenant="capped", max_cycles=40))
            with pytest.raises(TenantConcurrencyExceeded):
                svc.submit(req(rng, tenant="capped"))
            first.result(timeout=120)
        finally:
            svc.drain(timeout=10.0)

    def test_deadline_propagates_into_supervisor(self, rng):
        svc = SolveService(config(workers=1))
        try:
            # a deadline that expired while queued: the solve stops
            # immediately with status "deadline", not a hang
            ticket = svc.submit(req(rng, deadline=0.0, max_cycles=500))
            result = ticket.result(timeout=60)
            assert result.status == "deadline"
        finally:
            svc.drain(timeout=10.0)


class TestOverloadDegradation:
    def test_low_priority_forced_onto_naive_rung(self, rng):
        # the degrade posture applies at *execution* time: a low-
        # priority request admitted while the fleet was calm runs on
        # the naive rung if the budget escalated while it was queued
        released = threading.Event()

        def hook(supervisor, request):
            if request.request_id == "blocker":
                released.wait(timeout=30)

        svc = SolveService(
            config(workers=1, max_fleet_bytes=10**6, fault_hook=hook)
        )
        try:
            blocker = svc.submit(
                req(rng, n=8, request_id="blocker")
            )
            low = svc.submit(req(rng, priority="low", n=8))
            # budget escalates to degrade while `low` waits in queue
            svc.budget.reserve(int(0.85 * 10**6), 0)
            released.set()
            blocker.result(timeout=120)
            result = low.result(timeout=120)
            assert set(result.variant_trail) == {"polymg-naive"}
            assert any(r.kind == "degraded" for r in svc.log.records)
            svc.budget.release(int(0.85 * 10**6), 0)
        finally:
            svc.drain(timeout=10.0)

    def test_normal_priority_keeps_best_rung(self, rng):
        svc = SolveService(config(workers=1, max_fleet_bytes=10**6))
        try:
            svc.budget.reserve(int(0.85 * 10**6), 0)
            ticket = svc.submit(req(rng, priority="normal", n=8))
            result = ticket.result(timeout=120)
            assert result.variant_trail[0] == "polymg-opt+"
            svc.budget.release(int(0.85 * 10**6), 0)
        finally:
            svc.drain(timeout=10.0)


class TestHealthz:
    def test_snapshot_shape_and_liveness(self, rng, service):
        service.submit(req(rng)).result(timeout=120)
        h = service.healthz()
        assert h["status"] == "serving"
        assert h["workers"]["alive"] == h["workers"]["configured"] == 2
        assert h["counters"]["completed"] >= 1
        assert h["budget"]["level"] == "normal"
        assert "polymg-naive" in h["breakers"]
        assert h["tenants"]["t1"]["completed"] >= 1
        assert h["incidents"]["capacity"] == 4096

    def test_healthz_is_safe_under_concurrent_traffic(self, rng, service):
        stop = threading.Event()
        errors = []

        def poll():
            while not stop.is_set():
                try:
                    service.healthz()
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

        poller = threading.Thread(target=poll)
        poller.start()
        try:
            tickets = [service.submit(req(rng)) for _ in range(4)]
            for ticket in tickets:
                ticket.result(timeout=120)
        finally:
            stop.set()
            poller.join()
        assert errors == []
