"""Graceful drain, worker-kill survival, and checkpoint recovery."""

from __future__ import annotations

import time

import pytest

from repro.errors import QueueSaturated, ServiceDraining, SolvePreempted
from repro.multigrid.reference import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

from ..conftest import make_rhs

N = 16
OPTS = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4, omega=0.8)
LADDER = ("polymg-opt+", "polymg-naive")
OVERRIDES = {"tile_sizes": {2: (8, 16)}}


def config(tmp_path, **kw) -> ServiceConfig:
    base = dict(
        workers=1,
        queue_capacity=8,
        config_overrides=OVERRIDES,
        ladder_variants=LADDER,
        checkpoint_dir=str(tmp_path / "checkpoints"),
        default_tenant_policy=TenantPolicy(rate=None, max_concurrent=32),
    )
    base.update(kw)
    return ServiceConfig(**base)


def req(rng, **kw) -> SolveRequest:
    kw.setdefault("max_cycles", 10)
    return SolveRequest(
        tenant="t1", ndim=2, N=N, f=make_rhs(rng, 2, N), opts=OPTS, **kw
    )


def wait_until_running(ticket, timeout=10.0):
    deadline = time.monotonic() + timeout
    while ticket.started_at is None:
        assert time.monotonic() < deadline, "solve never started"
        time.sleep(0.002)


class TestWorkerKill:
    def test_killed_worker_requeues_and_solve_completes(
        self, rng, tmp_path
    ):
        svc = SolveService(config(tmp_path))
        try:
            ticket = svc.submit(req(rng, max_cycles=80))
            wait_until_running(ticket)
            victim = svc.kill_worker()
            result = ticket.result(timeout=120)
            # the solve finished on the respawned worker with the full
            # cycle budget honoured — no cycles lost, none repeated
            assert result.status in ("converged", "cycle-budget")
            assert len(result.residual_norms) - 1 <= 80
            kinds = [r.kind for r in svc.log.records]
            assert "worker-kill" in kinds
            assert "worker-respawn" in kinds
            assert svc.healthz()["workers"]["alive"] == 1
            assert victim == 0
        finally:
            svc.drain(timeout=10.0)

    def test_no_request_is_lost_across_kill(self, rng, tmp_path):
        svc = SolveService(config(tmp_path, workers=2))
        try:
            tickets = [
                svc.submit(req(rng, max_cycles=40)) for _ in range(4)
            ]
            wait_until_running(tickets[0])
            svc.kill_worker()
            for ticket in tickets:
                result = ticket.result(timeout=120)
                assert result.status in ("converged", "cycle-budget")
            assert svc.completed == 4
        finally:
            svc.drain(timeout=10.0)


class TestDrain:
    def test_drain_lets_quick_work_finish(self, rng, tmp_path):
        svc = SolveService(config(tmp_path))
        tickets = [svc.submit(req(rng)) for _ in range(3)]
        summary = svc.drain(timeout=60.0)
        assert summary["completed"] == 3
        assert summary["preempted"] == 0
        for ticket in tickets:
            assert ticket.result(timeout=0).status in (
                "converged",
                "cycle-budget",
            )

    def test_drain_preempts_and_persists_slow_work(self, rng, tmp_path):
        svc = SolveService(config(tmp_path))
        slow = svc.submit(req(rng, max_cycles=5000, request_id="slow"))
        wait_until_running(slow)
        summary = svc.drain(timeout=0.05)
        assert summary["preempted"] == 1
        with pytest.raises(SolvePreempted) as exc:
            slow.result(timeout=1)
        path = exc.value.checkpoint_path
        assert path is not None and path.endswith("slow.ckpt.npz")

    def test_queued_but_never_started_work_is_persisted(
        self, rng, tmp_path
    ):
        # one worker pinned on a slow solve; the queued request drains
        # straight from the queue with a cycle-0 checkpoint
        svc = SolveService(config(tmp_path))
        slow = svc.submit(req(rng, max_cycles=5000))
        wait_until_running(slow)
        queued = svc.submit(req(rng, request_id="never-started"))
        summary = svc.drain(timeout=0.05)
        assert summary["preempted"] == 2
        with pytest.raises(SolvePreempted) as exc:
            queued.result(timeout=1)
        assert exc.value.context["cycle"] == 0

    def test_submit_during_drain_is_typed(self, rng, tmp_path):
        svc = SolveService(config(tmp_path))
        svc.drain(timeout=5.0)
        with pytest.raises(ServiceDraining):
            svc.submit(req(rng))

    def test_drain_is_idempotent(self, rng, tmp_path):
        svc = SolveService(config(tmp_path))
        svc.submit(req(rng)).result(timeout=120)
        first = svc.drain(timeout=10.0)
        second = svc.drain(timeout=10.0)
        assert first["status"] == second["status"] == "drained"
        assert second.get("already") is True

    def test_context_manager_drains(self, rng, tmp_path):
        with SolveService(config(tmp_path)) as svc:
            svc.submit(req(rng)).result(timeout=120)
        assert svc.healthz()["status"] == "drained"


class TestRecovery:
    def test_preempted_solve_resumes_in_fresh_service(
        self, rng, tmp_path
    ):
        first = SolveService(config(tmp_path))
        slow = first.submit(
            req(rng, max_cycles=30, request_id="resumable")
        )
        wait_until_running(slow)
        first.drain(timeout=0.05)
        with pytest.raises(SolvePreempted) as exc:
            slow.result(timeout=1)
        interrupted_at = exc.value.context["cycle"]
        assert interrupted_at < 30

        second = SolveService(config(tmp_path))
        try:
            tickets = second.recover()
            assert len(tickets) == 1
            assert tickets[0].request.request_id == "resumable"
            result = tickets[0].result(timeout=120)
            # cycle numbering carried over: total work == one
            # uninterrupted solve's budget
            assert len(result.residual_norms) - 1 <= 30
            assert result.status in ("converged", "cycle-budget")
            # the consumed checkpoint was cleaned off disk
            leftovers = list(
                (tmp_path / "checkpoints").glob("*.ckpt.npz")
            )
            assert leftovers == []
        finally:
            second.drain(timeout=10.0)

    def test_recover_with_no_checkpoints_is_empty(self, tmp_path):
        svc = SolveService(config(tmp_path))
        try:
            assert svc.recover() == []
        finally:
            svc.drain(timeout=5.0)

    def test_unreadable_checkpoint_is_skipped_not_fatal(
        self, rng, tmp_path
    ):
        ckdir = tmp_path / "checkpoints"
        ckdir.mkdir(parents=True)
        (ckdir / "garbage.ckpt.npz").write_bytes(b"not an npz")
        svc = SolveService(config(tmp_path))
        try:
            assert svc.recover() == []
            assert any(
                r.kind == "recover" and r.action == "unreadable"
                for r in svc.log.records
            )
        finally:
            svc.drain(timeout=5.0)

    def test_recovery_eviction_resolves_the_victim(self, rng, tmp_path):
        # leave a high-priority checkpoint behind
        first = SolveService(config(tmp_path))
        slow = first.submit(
            req(
                rng,
                max_cycles=5000,
                priority="high",
                request_id="recov-high",
            )
        )
        wait_until_running(slow)
        first.drain(timeout=0.05)
        with pytest.raises(SolvePreempted):
            slow.result(timeout=1)

        # a worker-less service whose tiny queue is already full of
        # low-priority work: recovery evicts one victim, whose ticket
        # must resolve with a typed error — never hang — and whose
        # tenant slot and budget reservation must be returned
        second = SolveService(
            config(tmp_path, workers=0, queue_capacity=2)
        )
        lows = [
            second.submit(
                req(rng, priority="low", request_id=f"low-{i}")
            )
            for i in range(2)
        ]
        tickets = second.recover()
        assert len(tickets) == 1
        assert tickets[0].request.request_id == "recov-high"
        shed = [t for t in lows if t.done()]
        assert len(shed) == 1
        with pytest.raises(QueueSaturated):
            shed[0].result(timeout=0)
        usage = second.admission.tenant_usage()["t1"]
        assert usage["in_flight"] == 2  # surviving low + recovered
        assert usage["shed"] == 1
        assert second.shed == 1
        second.drain(timeout=0.05)

    def test_recover_at_concurrency_cap_keeps_checkpoint_on_disk(
        self, rng, tmp_path
    ):
        first = SolveService(config(tmp_path))
        slow = first.submit(req(rng, max_cycles=5000, request_id="capped"))
        wait_until_running(slow)
        first.drain(timeout=0.05)

        second = SolveService(
            config(
                tmp_path,
                workers=0,
                default_tenant_policy=TenantPolicy(
                    rate=None, max_concurrent=0
                ),
            )
        )
        assert second.recover() == []
        usage = second.admission.tenant_usage()["t1"]
        assert usage["in_flight"] == 0  # nothing claimed
        assert second.budget.snapshot()["reservations"] == 0
        # the checkpoint stays on disk for a later recover()
        leftovers = list((tmp_path / "checkpoints").glob("*.ckpt.npz"))
        assert len(leftovers) == 1
        second.drain(timeout=0.05)

    def test_no_checkpoint_dir_disables_persistence(self, rng, tmp_path):
        svc = SolveService(config(tmp_path, checkpoint_dir=None))
        slow = svc.submit(req(rng, max_cycles=5000))
        wait_until_running(slow)
        svc.drain(timeout=0.05)
        with pytest.raises(SolvePreempted) as exc:
            slow.result(timeout=1)
        assert exc.value.checkpoint_path is None
        assert svc.recover() == []
