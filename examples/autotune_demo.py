"""Auto-tuning demo (paper section 3.2.4 / Figure 12).

Tunes the 2-D V-10-0-0 pipeline over the paper's 80-configuration space
against the Table-1 machine model, then wall-clock-tunes a laptop-scale
instance over a reduced space with real executions.

Run:  python examples/autotune_demo.py
"""

import numpy as np

from repro.model import PAPER_MACHINE
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.tuning import autotune_measured, autotune_model
from repro.variants import polymg_opt_plus


def main() -> None:
    opts = MultigridOptions(cycle="V", n1=10, n2=0, n3=0, levels=4)

    print("=== model-based tuning @ paper scale (8192^2, 80 configs) ===")
    pipe = build_poisson_cycle(2, 8192, opts)
    result = autotune_model(
        pipe, polymg_opt_plus(), PAPER_MACHINE, threads=24, cycles=10
    )
    print(f"searched {result.configurations} configurations")
    top = sorted(result.points, key=lambda p: p.score)[:5]
    for p in top:
        print(
            f"  tile {str(p.tile_shape):12s} group-limit {p.group_limit} "
            f"-> {p.score:6.2f} s"
        )
    print(f"best: tile {result.best.tile_shape}, limit {result.best.group_limit}")

    print("\n=== measured tuning @ laptop scale (128^2) ===")
    n = 128
    lap = build_poisson_cycle(2, n, opts)
    rng = np.random.default_rng(3)
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))

    base = polymg_opt_plus(tile_sizes={2: (16, 64)})

    # restrict the measured search to a handful of points for speed
    import repro.tuning.autotuner as at

    space = [(16, 64), (32, 64), (32, 128), (64, 128)]
    orig = at.tile_space
    at.tile_space = lambda ndim: space if ndim == 2 else orig(ndim)
    at.GROUP_LIMITS = (4, 8)
    try:
        measured = autotune_measured(
            lap,
            base,
            lambda: lap.make_inputs(np.zeros_like(f), f),
            repeats=2,
        )
    finally:
        at.tile_space = orig
        at.GROUP_LIMITS = (1, 2, 4, 6, 8)
    for p in sorted(measured.points, key=lambda q: q.score):
        print(
            f"  tile {str(p.tile_shape):12s} group-limit {p.group_limit} "
            f"-> {p.score * 1e3:7.1f} ms"
        )


if __name__ == "__main__":
    main()
