"""Solve service demo: multi-tenant admission, overload, drain, recover.

Runs a small :class:`repro.service.SolveService` through its whole
life (DESIGN.md section 13):

* three tenants submit mixed-priority 2-D Poisson solves concurrently
  and every ticket resolves with a verified result;
* a burst of same-spec requests is coalesced through the batched
  execution tier (one kernel-plan walk, many right-hand sides) and the
  registry-sourced per-tier health sections are printed;
* a rate-limited tenant and a tight fleet budget show the typed
  refusals (``TenantRateLimited``, ``AdmissionDeferred`` /
  ``ServiceOverloaded``) and the graded overload posture;
* a worker is killed mid-solve — the solve is preempted at a cycle
  boundary and resumed by the respawned worker, nothing lost;
* the service drains: an unfinished solve persists its checkpoint, and
  a *second* service instance recovers and finishes it.

Run:  python examples/service_demo.py [--seed N]

Exits non-zero if any stage misbehaves.
"""

import argparse
import sys
import tempfile

import numpy as np

from repro.bench.report import banner, print_incident_log
from repro.errors import AdmissionRejected, SolvePreempted, TenantRateLimited
from repro.multigrid import MultigridOptions
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveService,
    TenantPolicy,
)

N = 32
OPTS = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4, omega=0.8)
LADDER = ("polymg-opt+", "polymg-naive")


def make_request(rng, tenant, priority="normal", **kw):
    f = np.zeros((N + 2, N + 2))
    f[1:-1, 1:-1] = rng.standard_normal((N, N))
    return SolveRequest(
        tenant=tenant,
        ndim=2,
        N=N,
        f=f,
        opts=OPTS,
        priority=priority,
        **kw,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    rng = np.random.default_rng(args.seed)
    checkpoint_dir = tempfile.mkdtemp(prefix="service-demo-")

    def config():
        return ServiceConfig(
            workers=2,
            queue_capacity=8,
            ladder_variants=LADDER,
            checkpoint_dir=checkpoint_dir,
            tenant_policies={
                "metered": TenantPolicy(rate=0.2, burst=1.0)
            },
        )

    service = SolveService(config())

    banner("1. multi-tenant traffic")
    tickets = [
        service.submit(make_request(rng, t, p))
        for t, p in [
            ("alpha", "high"),
            ("beta", "normal"),
            ("gamma", "low"),
            ("alpha", "normal"),
        ]
    ]
    for ticket in tickets:
        result = ticket.result(timeout=300)
        print(
            f"  {ticket.request.tenant:>6}/{ticket.request.priority:<6}"
            f" -> {result.status:12s} residual"
            f" {result.residual_norms[-1]:.2e}"
            f" in {ticket.latency():.3f}s"
        )

    banner("2. same-spec coalescing through the batched tier")
    # one worker pops a fresh request and claims its queued same-spec
    # peers (ServiceConfig.batch_max), solving them in lockstep: one
    # kernel-plan walk, many right-hand sides, bitwise-identical
    # iterates
    burst = [
        service.submit(make_request(rng, "alpha", max_cycles=6))
        for _ in range(4)
    ]
    for ticket in burst:
        ticket.result(timeout=300)
    health = service.healthz()
    print(f"  coalesced {health['counters']['coalesced']} request(s)")
    for tier, section in health["tiers"].items():
        print(
            f"  tier {tier:>11}: breaker {section['breaker']:>8},"
            f" {section['executions']} execution(s),"
            f" {section['failures']} failure(s)"
        )

    banner("3. typed refusals")
    service.submit(make_request(rng, "metered")).result(timeout=300)
    try:
        service.submit(make_request(rng, "metered"))
    except TenantRateLimited as err:
        print(f"  rate-limited, retry in {err.retry_after:.1f}s: {err}")
    service.budget.max_bytes = 10**6
    service.budget.reserve(10**6, 0)  # synthetic saturation: shed level
    try:
        service.submit(make_request(rng, "beta"))
    except AdmissionRejected as err:
        print(f"  overloaded: {type(err).__name__}")
    service.budget.release(10**6, 0)
    service.budget.max_bytes = None

    banner("4. worker kill: the solve survives")
    slow = service.submit(
        make_request(rng, "alpha", max_cycles=200, tol=1e-30)
    )
    while slow.started_at is None:
        pass
    service.kill_worker()
    result = slow.result(timeout=300)
    print(
        f"  preempted + resumed -> {result.status}, "
        f"{len(result.residual_norms) - 1} cycles total"
    )

    banner("5. drain persists, a fresh instance recovers")
    unfinished = service.submit(
        make_request(rng, "beta", max_cycles=5000, tol=1e-300)
    )
    while unfinished.started_at is None:
        pass
    summary = service.drain(timeout=0.2)
    print(f"  drain: {summary['preempted']} solve(s) preempted")
    try:
        unfinished.result(timeout=1)
    except SolvePreempted as err:
        print(f"  checkpoint at {err.checkpoint_path}")

    second = SolveService(config())
    recovered = second.recover()
    print(f"  recovered {len(recovered)} solve(s)")
    final = recovered[0].result(timeout=600)
    print(
        f"  finished: {final.status}, residual"
        f" {final.residual_norms[-1]:.2e}"
    )
    health = second.healthz()
    print(f"  healthz: {health['status']}, counters {health['counters']}")
    second.drain(timeout=30)

    print_incident_log(service.log, title="first instance incident log")

    ok = (
        all(t.error is None for t in tickets)
        and summary["preempted"] == 1
        and len(recovered) == 1
        and final.status in ("converged", "cycle-budget")
    )
    print("OK" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
