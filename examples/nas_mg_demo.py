"""NAS MG benchmark demo.

Runs the from-scratch NAS MG implementation (class S at laptop scale):
the plain-numpy solver and the compiled PolyMG pipeline side by side,
printing the residual-norm trajectory the NPB verification is built on.

Run:  python examples/nas_mg_demo.py
"""

import time

import numpy as np

from repro.multigrid.nas_mg import (
    NAS_CLASSES,
    NasMgSolver,
    build_nas_mg_cycle,
    nas_rhs,
)
from repro.variants import polymg_opt_plus


def main() -> None:
    n, iterations = NAS_CLASSES["S"]
    levels = 4
    print(f"NAS MG class S: {n}^3 grid, {iterations} iterations, {levels} levels")

    v = nas_rhs(n)
    solver = NasMgSolver(n, levels=levels)
    t0 = time.perf_counter()
    u_ref, norms = solver.solve(v, iterations)
    dt_ref = time.perf_counter() - t0

    pipe = build_nas_mg_cycle(n, levels=levels)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes={3: (8, 8, 16)}))
    u = np.zeros_like(v)
    t0 = time.perf_counter()
    for _ in range(iterations):
        u = compiled.execute(pipe.make_inputs(u, v))[pipe.output.name]
    dt_dsl = time.perf_counter() - t0

    print(f"\n{'it':>4s} {'residual L2 norm':>18s}")
    for i, norm in enumerate(norms):
        print(f"{i:4d} {norm:18.10e}")

    assert np.array_equal(u, u_ref), "DSL and reference disagree"
    print(
        f"\nsolver {dt_ref * 1e3:.1f} ms, compiled pipeline "
        f"{dt_dsl * 1e3:.1f} ms — results bit-identical"
    )
    print(f"pipeline: {pipe.stage_count_} stages (V-cycle, no pre-smoothing)")


if __name__ == "__main__":
    main()
