"""3-D Poisson with a W-cycle: comparing every optimization variant.

Runs the same W-cycle through all PolyMG variants and the hand-optimized
baselines at laptop scale, verifying they produce identical results, and
then evaluates the paper-scale machine model for the same pipeline —
the two views DESIGN.md section 5 describes.

Run:  python examples/poisson3d_wcycle.py
"""

import time

import numpy as np

from repro.baselines import HandOptPlutoSolver, HandOptSolver
from repro.bench import SMALL_TILES
from repro.model import PAPER_MACHINE, PipelineCostModel
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.variants import (
    handopt_model,
    handopt_pluto_model,
    polymg_dtile_opt_plus,
    polymg_naive,
    polymg_opt,
    polymg_opt_plus,
)


def main() -> None:
    n = 32
    opts = MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=3)
    pipe = build_poisson_cycle(3, n, opts)

    rng = np.random.default_rng(7)
    f = np.zeros((n + 2,) * 3)
    f[1:-1, 1:-1, 1:-1] = rng.standard_normal((n,) * 3)
    u0 = np.zeros_like(f)

    print(f"=== laptop-scale wall clock ({pipe.name}, one cycle) ===")
    reference = None
    for name, cfg in [
        ("polymg-naive", polymg_naive()),
        ("polymg-opt", polymg_opt(tile_sizes=SMALL_TILES)),
        ("polymg-opt+", polymg_opt_plus(tile_sizes=SMALL_TILES)),
        ("polymg-dtile-opt+", polymg_dtile_opt_plus(tile_sizes=SMALL_TILES)),
    ]:
        compiled = pipe.compile(cfg)
        inputs = pipe.make_inputs(u0, f)
        t0 = time.perf_counter()
        out = compiled.execute(inputs)[pipe.output.name]
        dt = time.perf_counter() - t0
        if reference is None:
            reference = out
        match = "bit-identical" if np.array_equal(out, reference) else "MISMATCH"
        print(f"  {name:18s} {dt * 1e3:8.1f} ms   {match}")

    for name, solver_cls in [
        ("handopt", HandOptSolver),
        ("handopt+pluto", HandOptPlutoSolver),
    ]:
        solver = solver_cls(3, n, opts)
        t0 = time.perf_counter()
        out = solver.cycle(u0, f)
        dt = time.perf_counter() - t0
        match = "bit-identical" if np.array_equal(out, reference) else "MISMATCH"
        print(f"  {name:18s} {dt * 1e3:8.1f} ms   {match}")

    print("\n=== paper-scale machine model (class B: 256^3, 25 cycles, 24 cores) ===")
    paper = build_poisson_cycle(3, 256, MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=4))
    naive_t = PipelineCostModel(
        paper.compile(polymg_naive()), PAPER_MACHINE
    ).run_time(24, 25)
    for name, cfg in [
        ("handopt", handopt_model()),
        ("handopt+pluto", handopt_pluto_model()),
        ("polymg-opt", polymg_opt()),
        ("polymg-opt+", polymg_opt_plus()),
        ("polymg-dtile-opt+", polymg_dtile_opt_plus()),
    ]:
        t = PipelineCostModel(paper.compile(cfg), PAPER_MACHINE).run_time(24, 25)
        print(f"  {name:18s} {t:7.2f} s   ({naive_t / t:4.2f}x over naive {naive_t:.2f} s)")


if __name__ == "__main__":
    main()
