"""Inspect the compiler's artifacts: grouping, storage plan, C code.

Compiles a 2-D V-cycle at paper scale (no arrays are materialized) and
prints the fused-group report (paper Figure 6), the storage-plan
statistics (section 3.2), and the first part of the generated C/OpenMP
code (paper Figure 8).

Run:  python examples/codegen_inspect.py
"""

from repro.backend.codegen_c import generate_c, generated_loc
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.variants import polymg_opt_plus


def main() -> None:
    opts = MultigridOptions(cycle="V", n1=4, n2=4, n3=4, levels=4)
    pipe = build_poisson_cycle(2, 8192, opts)
    compiled = pipe.compile(
        polymg_opt_plus(tile_sizes={2: (32, 512)}, group_size_limit=6)
    )
    report = compiled.artifact_summary()

    print(f"=== grouping for {pipe.name} ({report['stage_count']} stages) ===")
    for gi, g in enumerate(report["groups"]):
        tag = "tiled" if g["tiled"] else "untiled"
        print(f"group {gi:2d} [{tag}] anchor={g['anchor']}")
        for s, k in zip(g["stages"], g["kinds"]):
            print(f"    {s} ({k})")
        print(
            f"    live-outs {g['live_outs']}; scratch "
            f"{g['scratch_stages']} stages -> {g['scratch_buffers']} buffers; "
            f"redundancy {g['redundancy'] * 100:.1f}%"
        )

    print("\n=== storage plan ===")
    print(
        f"full arrays: {report['full_arrays']} "
        f"({report['full_array_bytes'] / 1e6:.0f} MB) vs one-to-one "
        f"{report['full_arrays_without_reuse']} "
        f"({report['full_array_bytes_without_reuse'] / 1e6:.0f} MB)"
    )
    print(
        f"scratch bytes/tile: {report['scratch_bytes']} with reuse vs "
        f"{report['scratch_bytes_without_reuse']} without"
    )

    code = generate_c(compiled)
    print(f"\n=== generated C ({generated_loc(compiled)} lines) — head ===")
    start = code.index("void pipeline")
    print(code[start : start + 2400])


if __name__ == "__main__":
    main()
