"""Quickstart: solve a 2-D Poisson problem with the PolyMG DSL.

Builds the paper's Figure-3 V-cycle specification, compiles it with the
full ``polymg-opt+`` optimization pipeline (fusion + overlapped tiling +
all three storage optimizations), and iterates cycles to convergence.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench import SMALL_TILES
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.multigrid.kernels import apply_operator, norm_residual
from repro.variants import polymg_opt_plus


def main() -> None:
    n = 128  # interior grid points per dimension
    h = 1.0 / (n + 1)

    # manufactured problem: A u = f with u* = sin(pi x) sin(pi y)
    coords = np.arange(n + 2) * h
    X, Y = np.meshgrid(coords, coords, indexing="ij")
    u_exact = np.sin(np.pi * X) * np.sin(np.pi * Y)
    f = np.zeros_like(u_exact)
    f[1:-1, 1:-1] = apply_operator(u_exact, h)

    # one W(4,4)-cycle as a DSL pipeline, compiled with polymg-opt+
    opts = MultigridOptions(cycle="W", n1=4, n2=4, n3=4, levels=5)
    pipe = build_poisson_cycle(2, n, opts)
    compiled = pipe.compile(polymg_opt_plus(tile_sizes=SMALL_TILES))
    print(f"pipeline {pipe.name}: {pipe.stage_count_} stages,")
    report = compiled.artifact_summary()
    print(
        f"  fused into {report['group_count']} groups, "
        f"{report['full_arrays']} full arrays "
        f"(one-to-one would need {report['full_arrays_without_reuse']})"
    )

    u = np.zeros_like(f)
    print(f"\n{'cycle':>6s} {'residual':>12s} {'error':>12s}")
    for cycle in range(9):
        res = norm_residual(u, f, h)
        err = np.abs(u - u_exact).max()
        print(f"{cycle:6d} {res:12.3e} {err:12.3e}")
        u = compiled.execute(pipe.make_inputs(u, f))[pipe.output.name]

    assert np.abs(u - u_exact).max() < 1e-6
    print("\nconverged to the discrete solution.")


if __name__ == "__main__":
    main()
