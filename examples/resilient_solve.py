"""Resilient solve: a supervised multigrid solve surviving a fault.

Builds a 2-D Poisson V-cycle, arms a *transient* NaN poison on the
fastest variant (``polymg-native`` misbehaves on exactly one
invocation, modelling a single-event upset), and runs the solve under
the full resilience subsystem (DESIGN.md sections 10 and 12):

* the fault trips ``polymg-native``'s circuit breaker — the
  degradation ladder demotes to ``polymg-opt+``;
* the supervisor restores the last-known-good checkpoint and retries
  the same cycle on the demoted rung, so no converged work is lost;
* after the cooldown the ladder probes ``polymg-native`` with live
  traffic and re-promotes it — the solve finishes on the fast rung;
* the whole trail lands in the structured incident log.

Run:  python examples/resilient_solve.py [--seed N] [--incident-log F]

Doubles as the CI chaos runner: ``--seed`` varies the right-hand side
and ``--incident-log`` dumps the trail as JSON (the artifact uploaded
on failure).  Exits non-zero if the solve does not converge or the
ladder does not recover the fast rung.
"""

import argparse
import sys

import numpy as np

from repro.bench.report import banner, dump_incident_log, print_incident_log
from repro.multigrid import MultigridOptions, build_poisson_cycle
from repro.resilience import DegradationLadder, SolveSupervisor, SupervisorPolicy
from repro.verify.faults import inject_transient_nan_poison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n", type=int, default=32)
    parser.add_argument(
        "--incident-log",
        metavar="FILE",
        help="dump the incident trail to FILE as JSON",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    n = args.n
    f = np.zeros((n + 2, n + 2))
    f[1:-1, 1:-1] = rng.standard_normal((n, n))

    opts = MultigridOptions(cycle="V", n1=2, n2=2, n3=2, levels=3)
    pipe = build_poisson_cycle(2, n, opts)

    ladder = DegradationLadder(base_cooldown=0.001, promote_after=2)
    supervisor = SolveSupervisor(
        pipe,
        SupervisorPolicy(max_cycles=80, tol=1e-5),
        ladder=ladder,
        config_overrides={"tile_sizes": {2: (8, 16)}},
    )

    # arm the single-event upset on the fastest rung's first invocation
    compiled = supervisor.resilient.compiled_for("polymg-native")
    record = inject_transient_nan_poison(compiled, invocation=1)
    banner(f"solving with injected fault: {record}")

    result = supervisor.solve(f)

    print(
        f"\nstatus={result.status}  cycles={result.cycles}  "
        f"restores={result.restores}  "
        f"final residual={result.residual_norms[-1]:.3e}"
    )
    print("variant trail:", " ".join(result.variant_trail))
    print_incident_log(result)
    banner("per-rung health")
    for name, health in result.health.items():
        print(
            f"  {name:18s} state={health['state']:9s} "
            f"error_rate={health['error_rate']:.3f} "
            f"trips={health['trips']}"
        )

    if args.incident_log:
        dump_incident_log(result, args.incident_log)
        print(f"\nincident log written to {args.incident_log}")

    recovered = (
        result.variant_trail
        and result.variant_trail[-1] == "polymg-native"
        and result.health["polymg-native"]["state"] == "closed"
    )
    if not result.converged:
        print("FAIL: solve did not converge", file=sys.stderr)
        return 1
    if not recovered:
        print("FAIL: ladder did not re-promote polymg-native", file=sys.stderr)
        return 1
    print("\nOK: converged, fault survived, fast rung re-promoted")
    return 0


if __name__ == "__main__":
    sys.exit(main())
