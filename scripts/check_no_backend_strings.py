#!/usr/bin/env python
"""Lint: backend tier names must not be compared as string literals.

The tier registry (``repro.backend.registry``) is the single source of
truth for execution-tier identity: code that needs tier-specific
behaviour asks the registry (``TIERS.resolve(...)``) or dispatches off
a tier's capability flags (``jit_build``, ``plans_kernels``,
``supports_batching``, ...).  A scattered ``cfg.backend == "native"``
is exactly the duplication PR 7 removed — this check keeps it from
growing back.

Flagged: any comparison (``==``, ``!=``, ``in``, ``not in``) whose
operand is one of the literal tier names, anywhere under ``src/``,
``benchmarks/``, or ``tests/`` except the registry itself.
Non-comparison uses (labels, keyword defaults, docstrings,
registration) stay legal.

Run from the repository root::

    python scripts/check_no_backend_strings.py
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCAN_DIRS = ("src", "benchmarks", "tests")
EXEMPT = {REPO_ROOT / "src" / "repro" / "backend" / "registry.py"}
TIER_NAMES = frozenset({"native", "planned", "interpreted", "batched"})


def _literal_tiers(node: ast.AST) -> set[str]:
    """Tier-name string constants inside one comparison operand
    (covers bare literals and literal tuples/lists/sets)."""
    found = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and sub.value in TIER_NAMES
        ):
            found.add(sub.value)
    return found


def check_file(path: pathlib.Path) -> list[str]:
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as error:  # pragma: no cover - broken file
        return [f"{path}:{error.lineno}: unparsable: {error.msg}"]
    rel = path.relative_to(REPO_ROOT)
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(
            isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            for op in node.ops
        ):
            continue
        names = set()
        for operand in [node.left, *node.comparators]:
            names |= _literal_tiers(operand)
        if names:
            problems.append(
                f"{rel}:{node.lineno}: tier name(s) "
                f"{sorted(names)} compared as string literal(s); "
                "resolve through repro.backend.registry.TIERS or "
                "dispatch off capability flags instead"
            )
    return problems


def main() -> int:
    problems: list[str] = []
    for directory in SCAN_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            if path in EXEMPT:
                continue
            problems.extend(check_file(path))
    if problems:
        print(
            f"{len(problems)} forbidden backend-string comparison(s):",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print("no backend-string comparisons outside the tier registry")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
